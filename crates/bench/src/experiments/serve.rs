//! E-Serve — socket-tier saturation: pipelined multi-client ingest
//! over real loopback TCP into a directory-backed, WAL-durable
//! service.
//!
//! The workload is the service's worst honest case: `CLIENTS`
//! connections each pipeline a window of ingest requests (they do not
//! wait for an ack before sending the next), so the serving thread
//! sees deep batches and the group-commit path — one `wal_sync` per
//! batch, no response before the fsync — carries the whole load.
//! `Busy` answers (admission-queue backpressure) are retried by the
//! clients like any real deployment would.
//!
//! Three facts gate `serve_ok` (grep'd by CI):
//!
//! * **Durability did not lie**: the server's final LSN equals the
//!   number of distinct events acked — every ack had a WAL record
//!   behind it, none were double-logged under retry.
//! * **Group commit actually grouped**: `wal_fsyncs * 2 <=
//!   wal_appends` — pipelining must amortise fsyncs across records,
//!   otherwise the socket tier degraded to sync-per-record.
//! * **Throughput**: at least [`MIN_EPS`] acked events/sec end-to-end
//!   through real sockets (override with `SYNCHREL_SERVE_MIN_EPS` for
//!   slow CI runners; `SYNCHREL_SERVE_CLIENTS` / `SYNCHREL_SERVE_EVENTS`
//!   resize the fleet).
//!
//! [`run`] writes `BENCH_serve.json` at the repository root.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use synchrel_monitor::online::WireEvent;
use synchrel_obs::json::ObjectWriter;
use synchrel_serve::proto::{
    decode_frame, decode_response, make_req, request_frame, split_req, Command, Response,
};
use synchrel_serve::transport::Transport;
use synchrel_serve::{
    connect, DirStorage, ListenAddr, Server, ServerConfig, Service, ServiceConfig,
};

use crate::table::Table;

/// Default client fleet size (`SYNCHREL_SERVE_CLIENTS` overrides).
pub const CLIENTS: u64 = 4;
/// Default acked events per client (`SYNCHREL_SERVE_EVENTS` overrides).
pub const EVENTS_PER_CLIENT: u64 = 4_000;
/// Requests each client keeps in flight.
pub const WINDOW: usize = 64;
/// Default end-to-end floor, acked events/sec across the fleet
/// (`SYNCHREL_SERVE_MIN_EPS` overrides).
pub const MIN_EPS: f64 = 3_000.0;

/// Environment knob for the throughput floor on slow CI runners.
pub const MIN_EPS_ENV: &str = "SYNCHREL_SERVE_MIN_EPS";
/// Environment knob for the client fleet size.
pub const CLIENTS_ENV: &str = "SYNCHREL_SERVE_CLIENTS";
/// Environment knob for events per client.
pub const EVENTS_ENV: &str = "SYNCHREL_SERVE_EVENTS";

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One saturation run's numbers.
#[derive(Clone, Debug)]
pub struct ServeMeasurement {
    /// Connections in the fleet.
    pub clients: u64,
    /// Acked ingests per client.
    pub events_per_client: u64,
    /// Acked ingests across the fleet (== final LSN when honest).
    pub total_events: u64,
    /// Wall-clock seconds from first byte to last ack.
    pub elapsed_secs: f64,
    /// Acked events per second across the fleet.
    pub events_per_sec: f64,
    /// WAL records the service appended.
    pub wal_appends: u64,
    /// fsyncs the service issued (group commit amortises these).
    pub wal_fsyncs: u64,
    /// Final LSN of the stopped server.
    pub last_lsn: u64,
    /// `Busy` answers clients absorbed and retried.
    pub busy_retries: u64,
    /// Admission-queue high-water mark.
    pub queue_high_water: u64,
    /// Throughput floor this run was gated against.
    pub min_eps: f64,
}

impl ServeMeasurement {
    /// WAL records per fsync (group-commit amortisation factor).
    pub fn group_commit_ratio(&self) -> f64 {
        self.wal_appends as f64 / (self.wal_fsyncs.max(1)) as f64
    }

    /// Durability honest + group commit grouped + throughput floor.
    pub fn gate(&self) -> bool {
        self.last_lsn == self.total_events
            && self.wal_fsyncs * 2 <= self.wal_appends
            && self.events_per_sec >= self.min_eps
    }
}

/// One pipelined client: keep [`WINDOW`] ingests in flight, retry
/// `Busy`, return the number of `Busy` answers absorbed.
fn client_run(addr: &ListenAddr, client_id: u16, events: u64) -> Result<u64, String> {
    let mut wire = connect(addr, Some(Duration::from_millis(50))).map_err(|e| e.to_string())?;
    let ingest = |seq: u64| Command::Ingest {
        process: usize::from(client_id) - 1,
        seq,
        event: WireEvent::Internal,
        labels: vec![],
    };
    let mut next = 0u64;
    let mut pending: BTreeSet<u64> = BTreeSet::new();
    let mut acked = 0u64;
    let mut busy = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    while acked < events {
        if Instant::now() > deadline {
            return Err(format!("client {client_id} stalled at {acked}/{events}"));
        }
        while pending.len() < WINDOW && next < events {
            let frame = request_frame(make_req(client_id, next), &ingest(next));
            wire.send(&frame).map_err(|e| e.to_string())?;
            pending.insert(next);
            next += 1;
        }
        match wire.recv().map_err(|e| e.to_string())? {
            None => continue, // read timeout; responses still in flight
            Some(bytes) => {
                let frame = decode_frame(&bytes).map_err(|e| e.to_string())?;
                let (_, seq) = split_req(frame.req);
                match decode_response(&frame.payload).map_err(|e| e.to_string())? {
                    Response::Ack => {
                        if pending.remove(&seq) {
                            acked += 1;
                        }
                    }
                    Response::Busy => {
                        // Admission backpressure: re-offer the same id
                        // after a breath — the serving thread drains
                        // the queue between batches.
                        busy += 1;
                        std::thread::sleep(Duration::from_micros(200));
                        let frame = request_frame(make_req(client_id, seq), &ingest(seq));
                        wire.send(&frame).map_err(|e| e.to_string())?;
                    }
                    other => return Err(format!("client {client_id} got {other:?}")),
                }
            }
        }
    }
    Ok(busy)
}

/// Run one saturation measurement against a fresh directory-backed
/// service on a kernel-picked loopback port.
pub fn measure(clients: u64, events_per_client: u64, min_eps: f64) -> ServeMeasurement {
    let dir = std::env::temp_dir().join(format!(
        "synchrel-bench-serve-{}-{clients}x{events_per_client}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    let mut cfg = ServerConfig::new(clients as usize);
    cfg.queue_capacity = 8 * 1024;
    let storage = DirStorage::open(&dir).expect("bench storage");
    let server = Server::recover(storage, cfg).expect("fresh server");
    let svc = Service::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        server,
        ServiceConfig::default(),
    )
    .expect("service starts");
    let addr = svc.local_addr().clone();

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 1..=clients {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            client_run(&addr, c as u16, events_per_client)
        }));
    }
    let mut busy_retries = 0u64;
    for h in handles {
        busy_retries += h.join().expect("client thread").expect("client run");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let server = svc.stop();
    let st = server.stats().clone();
    let fsyncs = synchrel_serve::Storage::syncs(server.storage());
    let total = clients * events_per_client;
    let _ = std::fs::remove_dir_all(&dir);

    ServeMeasurement {
        clients,
        events_per_client,
        total_events: total,
        elapsed_secs: elapsed,
        events_per_sec: total as f64 / elapsed,
        wal_appends: st.wal_appends,
        wal_fsyncs: fsyncs,
        last_lsn: server.last_lsn(),
        busy_retries,
        queue_high_water: st.queue_high_water,
        min_eps,
    }
}

/// Render the `BENCH_serve.json` document.
pub fn report_json(m: &ServeMeasurement) -> String {
    ObjectWriter::new()
        .str_field("schema", "synchrel/BENCH_serve/v1")
        .str_field("git_rev", &super::git_rev())
        .bool_field("dirty", super::git_dirty())
        .str_field("transport", "tcp-loopback")
        .u64_field("clients", m.clients)
        .u64_field("events_per_client", m.events_per_client)
        .u64_field("total_events", m.total_events)
        .u64_field("window", WINDOW as u64)
        .f64_field("elapsed_secs", m.elapsed_secs)
        .f64_field("events_per_sec", m.events_per_sec)
        .u64_field("wal_appends", m.wal_appends)
        .u64_field("wal_fsyncs", m.wal_fsyncs)
        .f64_field("group_commit_ratio", m.group_commit_ratio())
        .u64_field("last_lsn", m.last_lsn)
        .u64_field("busy_retries", m.busy_retries)
        .u64_field("queue_high_water", m.queue_high_water)
        .f64_field("min_eps", m.min_eps)
        .bool_field("serve_ok", m.gate())
        .finish()
}

/// Measure, render the table, and (optionally) write the JSON.
pub fn run_to(json_path: Option<&str>) -> String {
    let clients = env_u64(CLIENTS_ENV, CLIENTS).max(1);
    let events = env_u64(EVENTS_ENV, EVENTS_PER_CLIENT).max(1);
    let min_eps = env_f64(MIN_EPS_ENV, MIN_EPS);
    let m = measure(clients, events, min_eps);

    let mut t = Table::new([
        "clients",
        "events",
        "events/s",
        "WAL appends",
        "fsyncs",
        "records/fsync",
        "busy retried",
    ]);
    t.row([
        m.clients.to_string(),
        m.total_events.to_string(),
        format!("{:.0}", m.events_per_sec),
        m.wal_appends.to_string(),
        m.wal_fsyncs.to_string(),
        format!("{:.1}", m.group_commit_ratio()),
        m.busy_retries.to_string(),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\nsocket-tier gate (LSN honest, fsyncs*2 <= appends, >= {:.0} ev/s): {}\n",
        m.min_eps,
        if m.gate() { "PASS" } else { "FAIL" }
    ));
    if let Some(path) = json_path {
        match std::fs::write(path, report_json(&m)) {
            Ok(()) => out.push_str(&format!("wrote {path}\n")),
            Err(e) => out.push_str(&format!("could not write {path}: {e}\n")),
        }
    }
    out
}

/// Default entry point: measure and write `BENCH_serve.json` at the
/// repository root.
pub fn run() -> String {
    run_to(Some(
        super::bench_artifact("BENCH_serve.json").to_str().unwrap(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchrel_obs::json::is_valid;

    #[test]
    fn small_fleet_saturates_and_reports_honestly() {
        let m = measure(2, 300, 0.0);
        assert_eq!(m.total_events, 600);
        assert_eq!(m.last_lsn, 600, "acks without WAL records behind them");
        assert_eq!(m.wal_appends, 600);
        assert!(
            m.wal_fsyncs * 2 <= m.wal_appends,
            "group commit never grouped: {} fsyncs / {} appends",
            m.wal_fsyncs,
            m.wal_appends
        );
        assert!(m.events_per_sec > 0.0);
    }

    #[test]
    fn report_is_valid_json() {
        let m = ServeMeasurement {
            clients: 2,
            events_per_client: 10,
            total_events: 20,
            elapsed_secs: 0.5,
            events_per_sec: 40.0,
            wal_appends: 20,
            wal_fsyncs: 4,
            last_lsn: 20,
            busy_retries: 1,
            queue_high_water: 9,
            min_eps: 10.0,
        };
        let json = report_json(&m);
        assert!(json.starts_with("{\"schema\":\"synchrel/BENCH_serve/v1\""));
        assert!(json.contains("\"serve_ok\":true"), "{json}");
        assert!(json.contains("\"group_commit_ratio\":"), "{json}");
        assert!(is_valid(&json), "{json}");
    }
}
