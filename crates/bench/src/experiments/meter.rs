//! E-Meter — overhead of the observability layer.
//!
//! The `Meter` hook is threaded through every evaluation path as a
//! generic parameter, so the no-op meter must monomorphize away. This
//! experiment measures three variants of the counted 32-relation
//! sweep, all compiled side by side in this crate so they share one
//! codegen environment (comparing against `Detector::all_pairs`, a
//! separate instantiation living in `synchrel-core`, turns per-binary
//! code-layout luck into a phantom 10% "overhead"):
//!
//! * `plain`    — hand-rolled loop over the un-metered
//!   `Evaluator::eval_proxy` primitive: exactly the counted path as it
//!   existed before the observability layer (the PR-1 baseline);
//! * `noop`     — the same loop over `eval_proxy_with(&NoopMeter)`;
//! * `counting` — the same loop over a live `CompareCounter`.
//!
//! The guard is `noop` within [`GUARD_RATIO`] of `plain`; the counting
//! meter is allowed to cost whatever its Cell increments cost (it is
//! reported, not guarded). Results are written to `BENCH_meter.json`
//! using the hand-rolled JSON emitter so the artifact is identical
//! with or without a real `serde_json`.

use std::time::Instant;

use synchrel_core::{
    CompareCounter, Detector, Evaluator, NoopMeter, ProxyRelation, ProxySummary, Relation,
};
use synchrel_obs::json::ObjectWriter;
use synchrel_sim::workload::{self, Workload};

use crate::table::Table;

/// Maximum tolerated slowdown of the no-op-metered sweep relative to
/// the plain sweep (1.05 = within 5% of the PR-1 baseline).
pub const GUARD_RATIO: f64 = 1.05;

/// Measurement rounds; the best round (highest pairs/s, lowest
/// overhead ratio) is kept, which filters scheduler noise far better
/// than averaging.
const TRIALS: usize = 5;

/// Warm-up sweeps per strategy before the paired rounds start.
pub const WARMUP_ITERS: u64 = 1;

/// Overhead measurement of one workload.
#[derive(Clone, Debug)]
pub struct MeterMeasurement {
    /// Workload name.
    pub workload: String,
    /// Number of nonatomic events.
    pub events: usize,
    /// Ordered pairs per full all-pairs sweep.
    pub pairs: usize,
    /// Pairs/second, plain `all_pairs()` (PR-1 baseline path).
    pub plain_pps: f64,
    /// Pairs/second with the explicit `NoopMeter` hook.
    pub noop_pps: f64,
    /// Pairs/second with a live `CompareCounter`.
    pub counting_pps: f64,
    /// Paired slowdown of the no-op-metered sweep, `t_noop / t_plain`
    /// (minimum over ABBA-paired rounds).
    pub noop_ratio: f64,
    /// Paired slowdown of the counting-metered sweep,
    /// `t_counting / t_plain`.
    pub counting_ratio: f64,
    /// Total comparisons one sweep spends (from the counting meter).
    pub comparisons: u64,
    /// Mean comparisons per ordered pair.
    pub per_pair: f64,
}

impl MeterMeasurement {
    /// Does the no-op meter stay within the zero-overhead guard?
    pub fn guard_ok(&self) -> bool {
        self.noop_ratio <= GUARD_RATIO
    }

    fn to_json(&self) -> String {
        ObjectWriter::new()
            .str_field("workload", &self.workload)
            // Per-relation attribution requires the unfused path, so
            // every row is measured in counted mode.
            .str_field("mode", "counted")
            .u64_field("events", self.events as u64)
            .u64_field("pairs", self.pairs as u64)
            .f64_field("plain_pps", self.plain_pps)
            .f64_field("noop_pps", self.noop_pps)
            .f64_field("counting_pps", self.counting_pps)
            .f64_field("noop_ratio", self.noop_ratio)
            .f64_field("counting_ratio", self.counting_ratio)
            .u64_field("comparisons", self.comparisons)
            .f64_field("per_pair", self.per_pair)
            .bool_field("guard_ok", self.guard_ok())
            .finish()
    }
}

/// Render the whole report (all rows plus the aggregate verdict) as
/// the `BENCH_meter.json` document.
pub fn report_json(seed: u64, rows: &[MeterMeasurement]) -> String {
    let all_ok = rows.iter().all(MeterMeasurement::guard_ok);
    ObjectWriter::new()
        .str_field("schema", "synchrel/BENCH_meter/v3")
        .str_field("git_rev", &super::git_rev())
        .bool_field("dirty", super::git_dirty())
        .u64_field("workload_seed", seed)
        .u64_field("warmup_iters", WARMUP_ITERS)
        .f64_field("guard_ratio", GUARD_RATIO)
        .bool_field("guard_ok", all_ok)
        .raw_field(
            "rows",
            &synchrel_obs::json::array_of(rows.iter().map(MeterMeasurement::to_json)),
        )
        .finish()
}

/// One timing window of `f` (one full sweep per call): sweeps/sec.
fn sweeps_per_sec_window(f: &mut dyn FnMut()) -> f64 {
    let mut reps = 0u32;
    let t0 = Instant::now();
    loop {
        f();
        reps += 1;
        let dt = t0.elapsed().as_secs_f64();
        if (reps >= 3 && dt >= 0.05) || dt >= 0.5 {
            return f64::from(reps) / dt;
        }
    }
}

/// One ABBA-paired round per test strategy: times `base`, each test,
/// each test again in reverse, `base` again — all in immediate
/// succession, so linear CPU-speed drift (turbo decay, noisy-neighbor
/// load) cancels out of the per-round `t_test / t_base` ratio.
///
/// Returns the best sweeps/sec seen per strategy (base first) and the
/// **minimum** paired ratio per test strategy over [`TRIALS`] rounds:
/// external noise only ever inflates a ratio, so the least-polluted
/// round bounds the true overhead from above.
fn paired_rounds(base: &mut dyn FnMut(), tests: &mut [&mut dyn FnMut()]) -> (Vec<f64>, Vec<f64>) {
    // Warm-up sweeps each: summary caches and allocator in steady state.
    for _ in 0..WARMUP_ITERS {
        base();
        for f in tests.iter_mut() {
            f();
        }
    }
    let mut best = vec![0.0f64; tests.len() + 1];
    let mut ratios = vec![f64::INFINITY; tests.len()];
    for _ in 0..TRIALS {
        let a1 = sweeps_per_sec_window(base);
        let fwd: Vec<f64> = tests
            .iter_mut()
            .map(|f| sweeps_per_sec_window(*f))
            .collect();
        let rev: Vec<f64> = tests
            .iter_mut()
            .rev()
            .map(|f| sweeps_per_sec_window(*f))
            .collect();
        let a2 = sweeps_per_sec_window(base);
        best[0] = best[0].max(a1).max(a2);
        let t_base = 1.0 / a1 + 1.0 / a2;
        for (k, r) in ratios.iter_mut().enumerate() {
            let (b1, b2) = (fwd[k], rev[tests.len() - 1 - k]);
            best[k + 1] = best[k + 1].max(b1).max(b2);
            *r = r.min((1.0 / b1 + 1.0 / b2) / t_base);
        }
    }
    (best, ratios)
}

fn measure(w: &Workload) -> MeterMeasurement {
    let d = Detector::new(&w.exec, w.events.clone());
    d.warm_up();

    // One counted sweep for the comparison tallies (and pair count).
    let tally = CompareCounter::new();
    let pairs = d.all_pairs_with(&tally).len();
    let snap = tally.snapshot(Relation::NAMES);

    let ev = Evaluator::new(&w.exec);
    let summaries: Vec<_> = w.events.iter().map(|e| ev.summarize_proxies(e)).collect();
    // One sweep = every ordered pair through all 32 relations, like
    // `all_pairs`, minus report assembly (identical in all variants).
    let sweep = |body: &dyn Fn(ProxyRelation, &ProxySummary, &ProxySummary) -> u64| {
        let mut total = 0u64;
        for (xi, sx) in summaries.iter().enumerate() {
            for (yi, sy) in summaries.iter().enumerate() {
                if xi != yi {
                    for pr in ProxyRelation::all() {
                        total += body(pr, sx, sy);
                    }
                }
            }
        }
        std::hint::black_box(total);
    };

    let counter = CompareCounter::new();
    let (best, ratios) = paired_rounds(
        &mut || sweep(&|pr, sx, sy| ev.eval_proxy(pr, sx, sy).comparisons),
        &mut [
            &mut || sweep(&|pr, sx, sy| ev.eval_proxy_with(pr, sx, sy, &NoopMeter).comparisons),
            &mut || sweep(&|pr, sx, sy| ev.eval_proxy_with(pr, sx, sy, &counter).comparisons),
        ],
    );

    MeterMeasurement {
        workload: w.name.clone(),
        events: w.events.len(),
        pairs,
        plain_pps: best[0] * pairs as f64,
        noop_pps: best[1] * pairs as f64,
        counting_pps: best[2] * pairs as f64,
        noop_ratio: ratios[0],
        counting_ratio: ratios[1],
        comparisons: snap.comparisons(),
        per_pair: snap.comparisons() as f64 / pairs.max(1) as f64,
    }
}

fn workloads(seed: u64) -> Vec<Workload> {
    vec![
        workload::seeded(seed, 8, 40, 16, 4, 3),
        workload::ring(8, 6),
        workload::phases(8, 6, 4),
    ]
}

/// Run the overhead measurement and render the table. When `json_path`
/// is given, also write the machine-readable report there.
pub fn run_to(seed: u64, json_path: Option<&str>) -> String {
    let rows: Vec<MeterMeasurement> = workloads(seed).iter().map(measure).collect();
    let mut t = Table::new([
        "workload",
        "pairs",
        "plain p/s",
        "noop p/s",
        "counting p/s",
        "noop ×",
        "counting ×",
        "cmp/pair",
        "guard",
    ]);
    for m in &rows {
        t.row([
            m.workload.clone(),
            m.pairs.to_string(),
            format!("{:.0}", m.plain_pps),
            format!("{:.0}", m.noop_pps),
            format!("{:.0}", m.counting_pps),
            format!("{:.3}", m.noop_ratio),
            format!("{:.3}", m.counting_ratio),
            format!("{:.1}", m.per_pair),
            if m.guard_ok() { "ok" } else { "OVER" }.to_string(),
        ]);
    }
    let mut out = t.render();
    let all_ok = rows.iter().all(MeterMeasurement::guard_ok);
    out.push_str(&format!(
        "\nno-op meter guard (<= {GUARD_RATIO:.2}x plain): {}\n",
        if all_ok { "PASS" } else { "FAIL" }
    ));
    if let Some(path) = json_path {
        match std::fs::write(path, report_json(seed, &rows)) {
            Ok(()) => out.push_str(&format!("wrote {path}\n")),
            Err(e) => out.push_str(&format!("could not write {path}: {e}\n")),
        }
    }
    out
}

/// Default entry point: measure and write `BENCH_meter.json` at the
/// repository root.
pub fn run(seed: u64) -> String {
    run_to(
        seed,
        Some(super::bench_artifact("BENCH_meter.json").to_str().unwrap()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchrel_obs::json::is_valid;

    #[test]
    fn measurement_sane() {
        let w = workload::ring(4, 3);
        let m = measure(&w);
        assert_eq!(m.pairs, 6);
        assert!(m.plain_pps > 0.0);
        assert!(m.noop_pps > 0.0);
        assert!(m.counting_pps > 0.0);
        assert!(m.comparisons > 0);
        assert!(m.per_pair > 0.0);
        assert!(m.noop_ratio > 0.0 && m.noop_ratio.is_finite());
        assert!(m.counting_ratio > 0.0 && m.counting_ratio.is_finite());
    }

    #[test]
    fn report_is_valid_json() {
        let w = workload::ring(4, 3);
        let json = report_json(5, &[measure(&w)]);
        assert!(json.starts_with("{\"schema\":\"synchrel/BENCH_meter/v3\""));
        assert!(json.contains("\"git_rev\":"), "{json}");
        assert!(json.contains("\"dirty\":"), "{json}");
        assert!(json.contains("\"workload_seed\":5"), "{json}");
        assert!(json.contains("\"warmup_iters\":1"), "{json}");
        assert!(json.contains("\"mode\":\"counted\""), "{json}");
        // CI greps for this exact adjacency; keep the fields together.
        assert!(
            json.contains("\"guard_ratio\":1.05,\"guard_ok\":"),
            "{json}"
        );
        assert!(json.contains("\"noop_ratio\":"), "{json}");
        assert!(is_valid(&json), "{json}");
    }
}
