//! E-F1/2/3 — Figures 1–3, rendered as ASCII space-time diagrams.
//!
//! * Figure 1: poset events `X`, `Y` and their proxies `L`/`U` under
//!   both proxy definitions.
//! * Figure 2: the four cuts `C1(X)–C4(X)` of an 8-event poset on 4
//!   nodes, surfaces marked.
//! * Figure 3: the four cuts of each proxy `L_X` and `U_X` of the same
//!   poset.

use synchrel_core::{condensation, CondensationKind, Diagram, NonatomicEvent, ProxyDefinition};

use crate::fig_exec::{fig1_setup, fig2_setup};

fn list(ev: &NonatomicEvent) -> String {
    ev.events()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Figure 1: `X`, `Y`, and their proxies.
pub fn fig1() -> String {
    let (exec, x, y, labels) = fig1_setup();
    let mut d = Diagram::new(&exec);
    for (e, l) in &labels {
        d.label(*e, *l);
    }
    let mut out = d.render();
    out.push('\n');
    for (name, ev) in [("X", &x), ("Y", &y)] {
        let l2 = ev
            .proxy_lower(&exec, ProxyDefinition::PerNode)
            .expect("exists");
        let u2 = ev
            .proxy_upper(&exec, ProxyDefinition::PerNode)
            .expect("exists");
        out.push_str(&format!(
            "{name} = {{{}}}\n  L_{name} (Defn 2) = {{{}}}\n  U_{name} (Defn 2) = {{{}}}\n",
            list(ev),
            list(&l2),
            list(&u2),
        ));
        let l3 = ev.proxy_lower(&exec, ProxyDefinition::Global);
        let u3 = ev.proxy_upper(&exec, ProxyDefinition::Global);
        out.push_str(&format!(
            "  L_{name} (Defn 3) = {}\n  U_{name} (Defn 3) = {}\n",
            l3.map(|e| format!("{{{}}}", list(&e)))
                .unwrap_or_else(|_| "∅ (no global minimum)".into()),
            u3.map(|e| format!("{{{}}}", list(&e)))
                .unwrap_or_else(|_| "∅ (no global maximum)".into()),
        ));
    }
    out
}

/// Figure 2: the four cuts of the 8-event poset `X`.
pub fn fig2() -> String {
    let (exec, x, labels) = fig2_setup();
    let mut d = Diagram::new(&exec);
    for (e, l) in &labels {
        d.label(*e, *l);
    }
    for (marker, kind) in [
        ('1', CondensationKind::IntersectPast),
        ('2', CondensationKind::UnionPast),
        ('3', CondensationKind::IntersectFuture),
        ('4', CondensationKind::UnionFuture),
    ] {
        d.cut(marker, &condensation(&exec, &x, kind));
    }
    let mut out = String::from(
        "Poset X = {x1..x8} on 4 nodes; surfaces of C1(∩⇓X), C2(∪⇓X), \
         C3(∩⇑X), C4(∪⇑X) marked |1..|4:\n\n",
    );
    out.push_str(&d.render());
    out
}

/// Figure 3: the four cuts of each proxy of the same poset.
pub fn fig3() -> String {
    let (exec, x, labels) = fig2_setup();
    let mut out = String::new();
    for (pname, def) in [("L_X", true), ("U_X", false)] {
        let proxy = if def {
            x.proxy_lower(&exec, ProxyDefinition::PerNode)
                .expect("exists")
        } else {
            x.proxy_upper(&exec, ProxyDefinition::PerNode)
                .expect("exists")
        };
        let mut d = Diagram::new(&exec);
        for (e, l) in &labels {
            d.label(*e, *l);
        }
        for (marker, kind) in [
            ('1', CondensationKind::IntersectPast),
            ('2', CondensationKind::UnionPast),
            ('3', CondensationKind::IntersectFuture),
            ('4', CondensationKind::UnionFuture),
        ] {
            d.cut(marker, &condensation(&exec, &proxy, kind));
        }
        out.push_str(&format!(
            "{pname} = {{{}}}; cuts C1–C4({pname}) marked |1..|4:\n\n{}\n",
            list(&proxy),
            d.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_proxies() {
        let s = fig1();
        assert!(s.contains("L_X (Defn 2)"), "{s}");
        assert!(s.contains("no global"), "{s}"); // Y has no global extreme
    }

    #[test]
    fn fig2_marks_four_cuts() {
        let s = fig2();
        for m in ["|1", "|2", "|3", "|4"] {
            assert!(s.contains(m), "missing {m} in\n{s}");
        }
        assert!(s.contains("x8"), "{s}");
    }

    #[test]
    fn fig3_covers_both_proxies() {
        let s = fig3();
        assert!(s.contains("L_X ="), "{s}");
        assert!(s.contains("U_X ="), "{s}");
    }
}
