//! E-Thm20 — Theorem 20: per-relation evaluation complexity.
//!
//! For every relation of Table 1 we report, over a randomized sweep:
//!
//! * the paper's claimed bound (`min`, `|N_X|`, or `|N_Y|`);
//! * the bound of the provably sound evaluation implemented here;
//! * the measured comparison count (must equal the sound bound);
//! * correctness against the naive ground truth;
//! * for R2' and R3: how often the *paper's claimed* other-side scan
//!   returns a wrong verdict — the documented Theorem-19/20 discrepancy.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use synchrel_core::{naive_relation, sound_bound, Evaluator, NonatomicEvent, Relation, ScanSet};
use synchrel_sim::workload::{random, random_nonatomic, RandomConfig};

use crate::table::Table;

/// Per-relation sweep outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct RelationOutcome {
    /// Trials.
    pub trials: usize,
    /// Linear verdict equals naive ground truth.
    pub correct: usize,
    /// Measured comparisons equal the sound bound.
    pub count_matches: usize,
    /// Trials where the paper's claimed min-side scan (where it differs
    /// from ours: R2' over `N_X`, R3 over `N_Y`) disagreed with ground
    /// truth.
    pub paper_scan_wrong: usize,
    /// Trials where the paper's claimed scan was even applicable.
    pub paper_scan_trials: usize,
}

fn draw_pair(
    rng: &mut ChaCha8Rng,
    seed: u64,
    t: usize,
) -> Option<(synchrel_core::Execution, NonatomicEvent, NonatomicEvent)> {
    let processes = 10;
    let w = random(&RandomConfig {
        processes,
        events_per_process: 10,
        message_prob: 0.35,
        seed: seed.wrapping_add(t as u64),
    });
    let nx = rng.random_range(1..=processes);
    let ny = rng.random_range(1..=processes);
    let x = random_nonatomic(&w.exec, rng, nx, 2);
    let mut y = random_nonatomic(&w.exec, rng, ny, 2);
    let mut guard = 0;
    while x.overlaps(&y) && guard < 50 {
        y = random_nonatomic(&w.exec, rng, ny, 2);
        guard += 1;
    }
    if x.overlaps(&y) {
        return None;
    }
    Some((w.exec, x, y))
}

/// Run the sweep.
pub fn sweep(seed: u64, trials: usize) -> [RelationOutcome; 8] {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = [RelationOutcome::default(); 8];
    for t in 0..trials {
        let Some((exec, x, y)) = draw_pair(&mut rng, seed, t) else {
            continue;
        };
        let ev = Evaluator::new(&exec);
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        for (k, rel) in Relation::ALL.into_iter().enumerate() {
            let ground = naive_relation(&exec, rel, &x, &y);
            let lin = ev.eval_counted(rel, &sx, &sy);
            let o = &mut out[k];
            o.trials += 1;
            o.correct += (lin.holds == ground) as usize;
            o.count_matches +=
                (lin.comparisons == sound_bound(rel, x.node_count(), y.node_count())) as usize;
            // The paper's claimed-but-unsound scans.
            let paper_scan = match rel {
                Relation::R2p => Some(ScanSet::NodesOfX),
                Relation::R3 => Some(ScanSet::NodesOfY),
                _ => None,
            };
            if let Some(scan) = paper_scan {
                let claimed = ev.eval_scanned(rel, &sx, &sy, scan).expect("implemented");
                o.paper_scan_trials += 1;
                o.paper_scan_wrong += (claimed.holds != ground) as usize;
            }
        }
    }
    out
}

/// Regenerate the Theorem-20 complexity table.
pub fn run(seed: u64, trials: usize) -> String {
    let outcomes = sweep(seed, trials);
    let mut t = Table::new([
        "Relation",
        "paper bound",
        "sound bound",
        "correct",
        "cmp = bound",
        "paper-scan wrong",
    ]);
    for (k, rel) in Relation::ALL.into_iter().enumerate() {
        let o = outcomes[k];
        let paper = match rel {
            Relation::R2 => "|N_X|",
            Relation::R3p => "|N_Y|",
            _ => "min(|N_X|,|N_Y|)",
        };
        let sound = match rel {
            Relation::R1 | Relation::R1p | Relation::R4 | Relation::R4p => "min(|N_X|,|N_Y|)",
            Relation::R2 | Relation::R3 => "|N_X|",
            Relation::R2p | Relation::R3p => "|N_Y|",
        };
        t.row([
            rel.name().to_string(),
            paper.to_string(),
            sound.to_string(),
            format!("{}/{}", o.correct, o.trials),
            format!("{}/{}", o.count_matches, o.trials),
            if o.paper_scan_trials > 0 {
                format!("{}/{}", o.paper_scan_wrong, o.paper_scan_trials)
            } else {
                "—".to_string()
            },
        ]);
    }
    let r2p_wrong = outcomes[3].paper_scan_wrong;
    let r3_wrong = outcomes[4].paper_scan_wrong;
    format!(
        "{}\nTheorem 20 reproduces for R1, R1', R2, R3', R4, R4'.\n\
         Discrepancy: the claimed min() bound for R2' and R3 relies on a \
         scan that returned wrong verdicts in {r2p_wrong} (R2'/N_X) and \
         {r3_wrong} (R3/N_Y) of this sweep's random trials; the sound \
         bounds are |N_Y| and |N_X| respectively (see EXPERIMENTS.md and \
         tests/linear_discrepancy.rs).\n\n{}",
        t.render(),
        counterexample_demo()
    )
}

/// Deterministic counterexamples where the paper's claimed scans give
/// wrong verdicts (the same constructions as
/// `tests/linear_discrepancy.rs`), so the discrepancy is visible in
/// every report regardless of the random sweep.
pub fn counterexample_demo() -> String {
    use synchrel_core::{ExecutionBuilder, NonatomicEvent};
    let mut out = String::from("deterministic counterexamples:\n");

    // R2': y₁@P2 hears x₁@P0 and x₂@P1 — R2' holds, invisible at N_X.
    let mut b = ExecutionBuilder::new(3);
    let (x1, m0) = b.send(0);
    let (x2, m1) = b.send(1);
    b.recv(2, m0).unwrap();
    b.recv(2, m1).unwrap();
    let y1 = b.internal(2);
    let exec = b.build().unwrap();
    let x = NonatomicEvent::new(&exec, [x1, x2]).unwrap();
    let y = NonatomicEvent::new(&exec, [y1]).unwrap();
    let ev = Evaluator::new(&exec);
    let (sx, sy) = (ev.summarize(&x), ev.summarize(&y));
    let truth = naive_relation(&exec, Relation::R2p, &x, &y);
    let nx_scan = ev
        .eval_scanned(Relation::R2p, &sx, &sy, ScanSet::NodesOfX)
        .unwrap();
    let auto = ev.eval_counted(Relation::R2p, &sx, &sy);
    out.push_str(&format!(
        "  R2'(X,Y): truth = {truth}, paper's N_X scan = {} (WRONG), \
         sound N_Y evaluation = {} in {} comparison(s)\n",
        nx_scan.holds, auto.holds, auto.comparisons
    ));

    // R3: x₁@P0 precedes y₁@P1 and y₂@P2 — R3 holds, invisible at N_Y.
    let mut b = ExecutionBuilder::new(3);
    let (x1, m0) = b.send(0);
    let (_, m1) = b.send(0);
    let y1 = b.recv(1, m0).unwrap();
    let y2 = b.recv(2, m1).unwrap();
    let exec = b.build().unwrap();
    let x = NonatomicEvent::new(&exec, [x1]).unwrap();
    let y = NonatomicEvent::new(&exec, [y1, y2]).unwrap();
    let ev = Evaluator::new(&exec);
    let (sx, sy) = (ev.summarize(&x), ev.summarize(&y));
    let truth = naive_relation(&exec, Relation::R3, &x, &y);
    let ny_scan = ev
        .eval_scanned(Relation::R3, &sx, &sy, ScanSet::NodesOfY)
        .unwrap();
    let auto = ev.eval_counted(Relation::R3, &sx, &sy);
    out.push_str(&format!(
        "  R3(X,Y):  truth = {truth}, paper's N_Y scan = {} (WRONG), \
         sound N_X evaluation = {} in {} comparison(s)\n",
        ny_scan.holds, auto.holds, auto.comparisons
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_always_correct_and_counted() {
        for o in sweep(23, 60) {
            assert_eq!(o.correct, o.trials);
            assert_eq!(o.count_matches, o.trials);
        }
    }

    #[test]
    fn paper_scan_does_fail_sometimes() {
        // The discrepancy is rare per trial and the exact trace stream
        // depends on the ChaCha sampling implementation, so a single
        // seed's sweep can miss it. Scan seeds until it manifests.
        let mut last = None;
        for seed in 0..64 {
            let outcomes = sweep(seed, 200);
            let (r2p, r3) = (outcomes[3], outcomes[4]);
            if r2p.paper_scan_wrong + r3.paper_scan_wrong > 0 {
                return;
            }
            last = Some((r2p, r3));
        }
        panic!(
            "the documented discrepancy should manifest on random traces \
             within 64 seeded sweeps; last sweep: {last:?}"
        );
    }
}
