//! E-Incr — incremental Problem-4 detection on a label-churn stream.
//!
//! A seeded random execution (16 processes, ~1M atomic events) is
//! streamed event-by-event into an [`IncrementalDetector`] holding a
//! sliding window of open intervals: every filled interval closes and a
//! fresh one opens, until 128 intervals have lived. After each atomic
//! event the detector has re-derived exactly the verdicts that event
//! could have changed (O(delta), via the inverted node index and the
//! settled masks).
//!
//! The baseline it is measured against is the **re-run-per-event
//! counterfactual**: what a batch sweep of all ordered pairs after
//! every single event would cost. That number is not timed — it is
//! computed exactly from the Theorem-20 cost formula `4·(2·|N_X| +
//! 2·|N_Y| + 2·min)` over the live node-count histogram, the same
//! count the batched kernel reports per pair (a unit test pins the
//! formula to the kernel's own meter). The JSON carries `incr_ok` so
//! CI fails the build if the incremental comparison total ever exceeds
//! [`RATIO_GATE`] of the counterfactual, or if the final incremental
//! verdicts diverge from an [`EvalMode::Batched`] sweep.
//!
//! [`run`] writes `BENCH_incr.json` at the repository root using the
//! hand-rolled JSON emitter, like the other bench artifacts.

use synchrel_core::{Detector, EvalMode, IncrementalDetector, NonatomicEvent};
use synchrel_obs::json::ObjectWriter;
use synchrel_sim::fault::mix;
use synchrel_sim::workload::{self, RandomConfig};

use crate::table::Table;

/// Maximum acceptable `incr_comparisons / batch_per_event_comparisons`.
/// The ISSUE acceptance bar is 5%; the measured ratio on the default
/// stream is orders of magnitude below it.
pub const RATIO_GATE: f64 = 0.05;

/// Shape of the churn stream.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Processes in the random execution.
    pub processes: usize,
    /// Atomic events to stream (rounded to a multiple of `processes`).
    pub target_events: usize,
    /// Intervals opened over the stream's lifetime.
    pub intervals: usize,
    /// Open intervals held at any moment.
    pub window: usize,
}

impl ChurnConfig {
    /// The artifact-sized stream: 16 processes, 1M events, 128
    /// intervals, 16-interval window.
    pub fn full() -> ChurnConfig {
        ChurnConfig {
            processes: 16,
            target_events: 1_000_000,
            intervals: 128,
            window: 16,
        }
    }

    /// A test-sized stream that keeps the same shape.
    pub fn small() -> ChurnConfig {
        ChurnConfig {
            processes: 6,
            target_events: 6_000,
            intervals: 48,
            window: 4,
        }
    }
}

/// What one churn run measures.
#[derive(Clone, Debug)]
pub struct IncrMeasurement {
    /// RNG seed the execution was grown from.
    pub seed: u64,
    /// Stream shape.
    pub cfg: ChurnConfig,
    /// Atomic events actually streamed.
    pub events: u64,
    /// Ordered interval pairs at end of stream.
    pub pairs: u64,
    /// Integer comparisons the incremental detector spent in total.
    pub incr_comparisons: u64,
    /// Combo scans (pair re-evaluations) the detector performed.
    pub incr_combo_scans: u64,
    /// Exact cost of a full batched all-pairs sweep after every event.
    pub batch_per_event_comparisons: u64,
    /// Cost of a single final batched sweep (for scale).
    pub final_sweep_comparisons: u64,
    /// Did the final incremental verdicts match an
    /// [`EvalMode::Batched`] detector on the same intervals?
    pub verdicts_match: bool,
    /// Did every pair settle once all intervals closed?
    pub all_settled: bool,
}

impl IncrMeasurement {
    /// `incr_comparisons` as a fraction of the re-run-per-event
    /// counterfactual.
    pub fn ratio(&self) -> f64 {
        self.incr_comparisons as f64 / self.batch_per_event_comparisons as f64
    }

    /// The CI gate: cheap enough *and* equivalent.
    pub fn ok(&self) -> bool {
        self.ratio() <= RATIO_GATE && self.verdicts_match && self.all_settled
    }
}

/// Theorem-20 cost of one full all-pairs sweep, from the node-count
/// histogram `h` (`h[c]` = intervals currently touching `c` nodes):
/// every ordered pair `(X, Y)` with `X != Y` costs
/// `4·(2·|N_X| + 2·|N_Y| + 2·min(|N_X|, |N_Y|))` comparisons.
fn sweep_cost(h: &[u64]) -> u64 {
    let mut total = 0u64;
    for (cx, &nx) in h.iter().enumerate() {
        if nx == 0 {
            continue;
        }
        for (cy, &ny) in h.iter().enumerate() {
            if ny == 0 {
                continue;
            }
            let pairs = if cx == cy { nx * (nx - 1) } else { nx * ny };
            total += pairs * 8 * (cx + cy + cx.min(cy)) as u64;
        }
    }
    total
}

/// Stream the seeded churn workload through an [`IncrementalDetector`]
/// and account both sides of the comparison.
pub fn measure(seed: u64, cfg: ChurnConfig) -> IncrMeasurement {
    let w = workload::random(&RandomConfig {
        processes: cfg.processes,
        events_per_process: cfg.target_events.div_ceil(cfg.processes),
        message_prob: 0.2,
        seed,
    });
    let order = w.exec.app_order().to_vec();
    let per_interval = (order.len() / cfg.intervals).max(1);

    let mut det = IncrementalDetector::new(&w.exec);
    let mut membership: Vec<Vec<synchrel_core::EventId>> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    let mut fill: Vec<usize> = Vec::new();
    for _ in 0..cfg.window.min(cfg.intervals) {
        open.push(det.add_interval());
        fill.push(0);
        membership.push(Vec::new());
    }

    // Node-count histogram of every interval created so far; the
    // counterfactual charges one full sweep at its current value per
    // streamed event.
    let mut hist = vec![0u64; cfg.processes + 1];
    hist[0] = open.len() as u64;
    let mut cached_sweep = sweep_cost(&hist);
    let mut batch_per_event = 0u64;

    for (step, &e) in order.iter().enumerate() {
        let slot = (mix(seed, 21, step as u64) % open.len() as u64) as usize;
        let k = open[slot];
        let before = det.interval_node_count(k);
        det.arrive(k, e);
        membership[k].push(e);
        let after = det.interval_node_count(k);
        if after != before {
            hist[before] -= 1;
            hist[after] += 1;
            cached_sweep = sweep_cost(&hist);
        }
        fill[k] += 1;
        if fill[k] >= per_interval && det.num_intervals() < cfg.intervals {
            det.close(k);
            let fresh = det.add_interval();
            open[slot] = fresh;
            fill.push(0);
            membership.push(Vec::new());
            hist[0] += 1;
            cached_sweep = sweep_cost(&hist);
        }
        batch_per_event += cached_sweep;
    }
    for &k in &open {
        det.close(k);
    }

    let n = det.num_intervals();
    let mut all_settled = true;
    for x in 0..n {
        for y in (x + 1)..n {
            all_settled &= det.pair_settled(x, y);
        }
    }

    // Final-sweep equivalence: a batched detector over the very same
    // interval memberships must report the same 32-bit verdict for
    // every ordered pair the incremental detector settled.
    let events: Vec<NonatomicEvent> = membership
        .iter()
        .map(|m| NonatomicEvent::new(&w.exec, m.iter().copied()).expect("churn interval"))
        .collect();
    let batched = Detector::new(&w.exec, events).with_mode(EvalMode::Batched);
    let reports = batched.all_pairs();
    let mut verdicts_match = true;
    let mut final_sweep = 0u64;
    for r in &reports {
        final_sweep += r.comparisons;
        verdicts_match &= det.relations(r.x, r.y) == Some(r.relations);
    }

    IncrMeasurement {
        seed,
        cfg,
        events: order.len() as u64,
        pairs: reports.len() as u64,
        incr_comparisons: det.comparisons(),
        incr_combo_scans: det.combo_scans(),
        batch_per_event_comparisons: batch_per_event,
        final_sweep_comparisons: final_sweep,
        verdicts_match,
        all_settled,
    }
}

/// Render the `BENCH_incr.json` document.
pub fn report_json(m: &IncrMeasurement) -> String {
    ObjectWriter::new()
        .str_field("schema", "synchrel/BENCH_incr/v1")
        .str_field("git_rev", &super::git_rev())
        .bool_field("dirty", super::git_dirty())
        .u64_field("workload_seed", m.seed)
        .u64_field("processes", m.cfg.processes as u64)
        .u64_field("intervals", m.cfg.intervals as u64)
        .u64_field("window", m.cfg.window as u64)
        .u64_field("events", m.events)
        .u64_field("pairs", m.pairs)
        .u64_field("incr_comparisons", m.incr_comparisons)
        .u64_field("incr_combo_scans", m.incr_combo_scans)
        .u64_field("batch_per_event_comparisons", m.batch_per_event_comparisons)
        .u64_field("final_sweep_comparisons", m.final_sweep_comparisons)
        .f64_field("ratio", m.ratio())
        .f64_field("ratio_gate", RATIO_GATE)
        .bool_field("verdicts_match", m.verdicts_match)
        .bool_field("all_settled", m.all_settled)
        .bool_field("incr_ok", m.ok())
        .finish()
}

/// Measure, render the report table, and (when `json_path` is given)
/// write the JSON document.
pub fn run_to(seed: u64, json_path: Option<&str>, cfg: ChurnConfig) -> String {
    let m = measure(seed, cfg);

    let mut t = Table::new([
        "events",
        "intervals",
        "pairs",
        "incr cmps",
        "batch/event cmps",
        "ratio",
        "verdicts",
    ]);
    t.row([
        m.events.to_string(),
        m.cfg.intervals.to_string(),
        m.pairs.to_string(),
        m.incr_comparisons.to_string(),
        m.batch_per_event_comparisons.to_string(),
        format!("{:.6}", m.ratio()),
        if m.verdicts_match && m.all_settled {
            "match".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\nincremental vs re-run-per-event gate (<= {:.0}%): {}\n",
        RATIO_GATE * 100.0,
        if m.ok() { "PASS" } else { "FAIL" }
    ));
    if let Some(path) = json_path {
        match std::fs::write(path, report_json(&m)) {
            Ok(()) => out.push_str(&format!("wrote {path}\n")),
            Err(e) => out.push_str(&format!("could not write {path}: {e}\n")),
        }
    }
    out
}

/// Default entry point: the 1M-event stream, written to
/// `BENCH_incr.json` at the repository root.
pub fn run(seed: u64) -> String {
    run_to(
        seed,
        Some(super::bench_artifact("BENCH_incr.json").to_str().unwrap()),
        ChurnConfig::full(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchrel_obs::json::is_valid;

    #[test]
    fn measurement_is_equivalent_and_cheap() {
        let m = measure(11, ChurnConfig::small());
        assert_eq!(
            m.cfg.intervals as u64 * (m.cfg.intervals as u64 - 1),
            m.pairs
        );
        assert!(m.verdicts_match, "incremental diverged from batched");
        assert!(m.all_settled, "open pairs at end of stream");
        assert!(m.ratio() <= RATIO_GATE, "ratio {} above gate", m.ratio());
        assert!(m.ok());
    }

    /// The counterfactual is grounded: the Theorem-20 histogram formula
    /// reproduces the batched kernel's own final-sweep meter exactly.
    #[test]
    fn histogram_formula_matches_kernel_meter() {
        let m = measure(23, ChurnConfig::small());
        let mut hist = vec![0u64; m.cfg.processes + 1];
        let w = workload::random(&RandomConfig {
            processes: m.cfg.processes,
            events_per_process: m.cfg.target_events.div_ceil(m.cfg.processes),
            message_prob: 0.2,
            seed: 23,
        });
        // Rebuild the final node counts by replaying the assignment.
        let order = w.exec.app_order().to_vec();
        let per_interval = (order.len() / m.cfg.intervals).max(1);
        let mut det = IncrementalDetector::new(&w.exec);
        let mut open: Vec<usize> = (0..m.cfg.window).map(|_| det.add_interval()).collect();
        let mut fill = vec![0usize; m.cfg.window];
        for (step, &e) in order.iter().enumerate() {
            let slot = (mix(23, 21, step as u64) % open.len() as u64) as usize;
            let k = open[slot];
            det.arrive(k, e);
            fill[k] += 1;
            if fill[k] >= per_interval && det.num_intervals() < m.cfg.intervals {
                det.close(k);
                open[slot] = det.add_interval();
                fill.push(0);
            }
        }
        for i in 0..det.num_intervals() {
            hist[det.interval_node_count(i)] += 1;
        }
        assert_eq!(sweep_cost(&hist), m.final_sweep_comparisons);
    }

    #[test]
    fn report_is_valid_json() {
        let m = measure(7, ChurnConfig::small());
        let json = report_json(&m);
        assert!(json.starts_with("{\"schema\":\"synchrel/BENCH_incr/v1\""));
        assert!(json.contains("\"git_rev\":"), "{json}");
        assert!(json.contains("\"workload_seed\":7"), "{json}");
        assert!(json.contains("\"ratio\":"), "{json}");
        assert!(json.contains("\"incr_ok\":true"), "{json}");
        assert!(is_valid(&json), "{json}");
    }
}
