//! Nonatomic poset events and their proxies (paper §1).
//!
//! A **nonatomic event** is a non-empty set `X ⊆ E` of application
//! (non-dummy) atomic events — a higher-level action of interest to the
//! application, possibly spanning several processes and several events per
//! process. Its **node set** (Definition 1) is
//! `N_X = { i | E_i ∩ X ⊄ {⊥ᵢ, ⊤ᵢ} }`.
//!
//! The begin/end **proxies** `L_X` / `U_X` condense a nonatomic event to
//! its extremal events, under either of two definitions:
//!
//! * **Definition 2** (per-node extremes):
//!   `L_X = {e_i ∈ X | ∀e'_i ∈ X : e_i ≼ e'_i}` — the earliest `X` event
//!   on each node of `N_X` (and dually for `U_X`);
//! * **Definition 3** (global extremes):
//!   `L_X = {e ∈ X | ∀e' ∈ X : e ≼ e'}` — the event preceding all of `X`,
//!   if one exists (at most one can, by antisymmetry).

use std::collections::BTreeSet;

use crate::error::{Error, Result};
use crate::execution::{EventId, Execution, ProcessId};

/// Which proxy definition to use (Definition 2 vs Definition 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProxyDefinition {
    /// Definition 2: per-node minimal/maximal events of `X`.
    PerNode,
    /// Definition 3: the global minimum/maximum of `X` (may not exist).
    Global,
}

/// A nonatomic poset event: a non-empty set of application events.
///
/// Construction validates that all members exist in the execution and that
/// none is a dummy `⊥ᵢ`/`⊤ᵢ`. Per-node extremes and the node set are
/// precomputed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonatomicEvent {
    events: BTreeSet<EventId>,
    /// `N_X`, ascending.
    node_list: Vec<usize>,
    /// 1-indexed position of the earliest member per process (`0` = none).
    lo: Vec<u32>,
    /// 1-indexed position of the latest member per process (`0` = none).
    hi: Vec<u32>,
}

impl NonatomicEvent {
    /// Build a nonatomic event from its member atomic events.
    pub fn new<I: IntoIterator<Item = EventId>>(exec: &Execution, events: I) -> Result<Self> {
        let events: BTreeSet<EventId> = events.into_iter().collect();
        if events.is_empty() {
            return Err(Error::EmptyNonatomicEvent);
        }
        let mut lo = vec![0u32; exec.num_processes()];
        let mut hi = vec![0u32; exec.num_processes()];
        for &e in &events {
            if !exec.contains(e) {
                return Err(Error::UnknownEvent(e));
            }
            if exec.is_dummy(e) {
                return Err(Error::DummyInNonatomicEvent(e));
            }
            let p = e.process.idx();
            let pc = e.pos_count();
            if lo[p] == 0 || pc < lo[p] {
                lo[p] = pc;
            }
            if pc > hi[p] {
                hi[p] = pc;
            }
        }
        let node_list = (0..exec.num_processes()).filter(|&p| lo[p] != 0).collect();
        Ok(NonatomicEvent {
            events,
            node_list,
            lo,
            hi,
        })
    }

    /// The member atomic events, ascending by `(process, index)`.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events.iter().copied()
    }

    /// Number of member atomic events `|X|`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Nonatomic events are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        self.events.contains(&e)
    }

    /// Do the two events share any atomic event?
    ///
    /// The relation evaluators assume disjoint operands (the paper's
    /// strict-`≺` relations are trivially false on shared events, while
    /// the cut conditions test `≼`; see `EXPERIMENTS.md`).
    pub fn overlaps(&self, other: &NonatomicEvent) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.events().any(|e| large.contains(e))
    }

    /// The node set `N_X` (Definition 1), ascending.
    #[inline]
    pub fn node_set(&self) -> &[usize] {
        &self.node_list
    }

    /// `|N_X|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_list.len()
    }

    /// 1-indexed position of the earliest member at process `i`
    /// (`0` when `i ∉ N_X`).
    #[inline]
    pub fn lo(&self, i: usize) -> u32 {
        self.lo[i]
    }

    /// 1-indexed position of the latest member at process `i`
    /// (`0` when `i ∉ N_X`).
    #[inline]
    pub fn hi(&self, i: usize) -> u32 {
        self.hi[i]
    }

    /// The earliest member event at process `i`, if any.
    pub fn earliest_at(&self, i: usize) -> Option<EventId> {
        (self.lo[i] != 0).then(|| EventId::new(i as u32, self.lo[i] - 1))
    }

    /// The latest member event at process `i`, if any.
    pub fn latest_at(&self, i: usize) -> Option<EventId> {
        (self.hi[i] != 0).then(|| EventId::new(i as u32, self.hi[i] - 1))
    }

    /// The begin proxy `L_X`.
    ///
    /// Under [`ProxyDefinition::PerNode`] (Definition 2) this always
    /// exists; under [`ProxyDefinition::Global`] (Definition 3) it is the
    /// at-most-one event `≼` all of `X`, and [`Error::EmptyProxy`] is
    /// returned when no such event exists.
    pub fn proxy_lower(&self, exec: &Execution, def: ProxyDefinition) -> Result<NonatomicEvent> {
        match def {
            ProxyDefinition::PerNode => {
                let evs: Vec<EventId> = self
                    .node_list
                    .iter()
                    .map(|&i| self.earliest_at(i).expect("node in N_X"))
                    .collect();
                NonatomicEvent::new(exec, evs)
            }
            ProxyDefinition::Global => {
                // A global minimum must be a per-node earliest event that
                // precedes-or-equals every other per-node earliest event.
                let candidates: Vec<EventId> = self
                    .node_list
                    .iter()
                    .map(|&i| self.earliest_at(i).expect("node in N_X"))
                    .collect();
                let min = candidates
                    .iter()
                    .find(|&&c| candidates.iter().all(|&o| exec.precedes_eq(c, o)))
                    .copied()
                    .ok_or(Error::EmptyProxy)?;
                NonatomicEvent::new(exec, [min])
            }
        }
    }

    /// The end proxy `U_X` (dual of [`NonatomicEvent::proxy_lower`]).
    pub fn proxy_upper(&self, exec: &Execution, def: ProxyDefinition) -> Result<NonatomicEvent> {
        match def {
            ProxyDefinition::PerNode => {
                let evs: Vec<EventId> = self
                    .node_list
                    .iter()
                    .map(|&i| self.latest_at(i).expect("node in N_X"))
                    .collect();
                NonatomicEvent::new(exec, evs)
            }
            ProxyDefinition::Global => {
                let candidates: Vec<EventId> = self
                    .node_list
                    .iter()
                    .map(|&i| self.latest_at(i).expect("node in N_X"))
                    .collect();
                let max = candidates
                    .iter()
                    .find(|&&c| candidates.iter().all(|&o| exec.precedes_eq(o, c)))
                    .copied()
                    .ok_or(Error::EmptyProxy)?;
                NonatomicEvent::new(exec, [max])
            }
        }
    }

    /// All application events of process `p` between the event's earliest
    /// and latest member there (used by interval-style constructions).
    pub fn span_at(&self, exec: &Execution, p: ProcessId) -> Vec<EventId> {
        let i = p.idx();
        if self.lo[i] == 0 {
            return Vec::new();
        }
        let _ = exec;
        (self.lo[i] - 1..self.hi[i])
            .map(|idx| EventId {
                process: p,
                index: idx,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionBuilder;

    /// p0: a s1 ; p1: r1 b ; p2: c — with message s1 -> r1.
    fn exec3() -> (Execution, [EventId; 5]) {
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let b = bld.internal(1);
        let c = bld.internal(2);
        (bld.build().unwrap(), [a, s1, r1, b, c])
    }

    #[test]
    fn construction_and_node_set() {
        let (e, [a, s1, _, b, c]) = exec3();
        let x = NonatomicEvent::new(&e, [a, s1, b, c]).unwrap();
        assert_eq!(x.len(), 4);
        assert_eq!(x.node_set(), &[0, 1, 2]);
        assert_eq!(x.node_count(), 3);
        let y = NonatomicEvent::new(&e, [a]).unwrap();
        assert_eq!(y.node_set(), &[0]);
    }

    #[test]
    fn rejects_empty_and_dummies() {
        let (e, [a, ..]) = exec3();
        assert_eq!(
            NonatomicEvent::new(&e, std::iter::empty()),
            Err(Error::EmptyNonatomicEvent)
        );
        let bot = e.bottom(ProcessId(0));
        assert_eq!(
            NonatomicEvent::new(&e, [a, bot]),
            Err(Error::DummyInNonatomicEvent(bot))
        );
        let top = e.top(ProcessId(2));
        assert_eq!(
            NonatomicEvent::new(&e, [top]),
            Err(Error::DummyInNonatomicEvent(top))
        );
        let ghost = EventId::new(7, 1);
        assert_eq!(
            NonatomicEvent::new(&e, [ghost]),
            Err(Error::UnknownEvent(ghost))
        );
    }

    #[test]
    fn extremes_per_node() {
        let (e, [a, s1, r1, b, _]) = exec3();
        let x = NonatomicEvent::new(&e, [a, s1, r1, b]).unwrap();
        assert_eq!(x.earliest_at(0), Some(a));
        assert_eq!(x.latest_at(0), Some(s1));
        assert_eq!(x.earliest_at(1), Some(r1));
        assert_eq!(x.latest_at(1), Some(b));
        assert_eq!(x.earliest_at(2), None);
        assert_eq!(x.lo(0), a.pos_count());
        assert_eq!(x.hi(0), s1.pos_count());
        assert_eq!(x.lo(2), 0);
    }

    #[test]
    fn per_node_proxies() {
        let (e, [a, s1, r1, b, c]) = exec3();
        let x = NonatomicEvent::new(&e, [a, s1, r1, b, c]).unwrap();
        let l = x.proxy_lower(&e, ProxyDefinition::PerNode).unwrap();
        let u = x.proxy_upper(&e, ProxyDefinition::PerNode).unwrap();
        assert_eq!(l.events().collect::<Vec<_>>(), vec![a, r1, c]);
        assert_eq!(u.events().collect::<Vec<_>>(), vec![s1, b, c]);
        // Proxies keep the node set (Definition 2 picks one event per node).
        assert_eq!(l.node_set(), x.node_set());
        assert_eq!(u.node_set(), x.node_set());
    }

    #[test]
    fn per_node_proxies_idempotent() {
        let (e, [a, s1, r1, b, c]) = exec3();
        let x = NonatomicEvent::new(&e, [a, s1, r1, b, c]).unwrap();
        let l = x.proxy_lower(&e, ProxyDefinition::PerNode).unwrap();
        let ll = l.proxy_lower(&e, ProxyDefinition::PerNode).unwrap();
        assert_eq!(l, ll);
        let u = x.proxy_upper(&e, ProxyDefinition::PerNode).unwrap();
        let uu = u.proxy_upper(&e, ProxyDefinition::PerNode).unwrap();
        assert_eq!(u, uu);
    }

    #[test]
    fn global_proxies() {
        let (e, [a, s1, r1, b, c]) = exec3();
        // a ≺ s1 ≺ r1 ≺ b, c concurrent with all.
        let x = NonatomicEvent::new(&e, [a, s1, r1, b]).unwrap();
        let l = x.proxy_lower(&e, ProxyDefinition::Global).unwrap();
        let u = x.proxy_upper(&e, ProxyDefinition::Global).unwrap();
        assert_eq!(l.events().collect::<Vec<_>>(), vec![a]);
        assert_eq!(u.events().collect::<Vec<_>>(), vec![b]);
        // With the concurrent event c, no global minimum or maximum exists.
        let x2 = NonatomicEvent::new(&e, [a, s1, c]).unwrap();
        assert_eq!(
            x2.proxy_lower(&e, ProxyDefinition::Global),
            Err(Error::EmptyProxy)
        );
        assert_eq!(
            x2.proxy_upper(&e, ProxyDefinition::Global),
            Err(Error::EmptyProxy)
        );
    }

    #[test]
    fn global_proxy_of_singleton() {
        let (e, [a, ..]) = exec3();
        let x = NonatomicEvent::new(&e, [a]).unwrap();
        let l = x.proxy_lower(&e, ProxyDefinition::Global).unwrap();
        let u = x.proxy_upper(&e, ProxyDefinition::Global).unwrap();
        assert_eq!(l, x);
        assert_eq!(u, x);
    }

    #[test]
    fn overlap_detection() {
        let (e, [a, s1, r1, b, _]) = exec3();
        let x = NonatomicEvent::new(&e, [a, s1]).unwrap();
        let y = NonatomicEvent::new(&e, [s1, r1]).unwrap();
        let z = NonatomicEvent::new(&e, [r1, b]).unwrap();
        assert!(x.overlaps(&y));
        assert!(y.overlaps(&x));
        assert!(!x.overlaps(&z));
    }

    #[test]
    fn span_at_fills_gaps() {
        let (e, [a, s1, ..]) = exec3();
        let x = NonatomicEvent::new(&e, [a, s1]).unwrap();
        assert_eq!(x.span_at(&e, ProcessId(0)), vec![a, s1]);
        assert_eq!(x.span_at(&e, ProcessId(2)), vec![]);
    }

    #[test]
    fn dedup_on_construction() {
        let (e, [a, ..]) = exec3();
        let x = NonatomicEvent::new(&e, [a, a, a]).unwrap();
        assert_eq!(x.len(), 1);
    }
}
