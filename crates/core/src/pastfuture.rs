//! Past and future cuts of atomic and nonatomic poset events
//! (paper §2.2, Definitions 8–10, Table 2).
//!
//! For an atomic event `e`:
//!
//! * `↓e` (Definition 8) is the **causal past** cut: the maximal set of
//!   events that happen before or equal `e`;
//! * `e⇑` (Definition 9) is the **complement of the causal future** cut:
//!   at each node, the prefix up to and including the *first* event that
//!   happens at-or-after `e` (i.e. the execution prefix up to the
//!   beginning of `e`'s causal future at each node).
//!
//! For a nonatomic event `X`, Definition 10 / Table 2 condenses the set of
//! per-member cuts into four cuts that aggregate causal information about
//! all of `X`:
//!
//! | label | set definition | timestamp (Table 2, col. 3) |
//! |-------|----------------|------------------------------|
//! | `C1(X) = ∩⇓X` | `∩_{x∈X} ↓x` | `T[i] = min_x T(↓x)[i]` |
//! | `C2(X) = ∪⇓X` | `∪_{x∈X} ↓x` | `T[i] = max_x T(↓x)[i]` |
//! | `C3(X) = ∩⇑X` | `∩_{x∈X} x⇑` | `T[i] = min_x T(x⇑)[i]` |
//! | `C4(X) = ∪⇑X` | `∪_{x∈X} x⇑` | `T[i] = max_x T(x⇑)[i]` |
//!
//! All four are cuts (Lemma 11). `∩⇓X` is the maximal prefix known to
//! *every* `x`; `∪⇓X` the maximal prefix known to `X` *collectively*;
//! `S(∩⇑X)` holds the earliest per-node events causally after *some* `x`;
//! `S(∪⇑X)` the earliest per-node events after *every* `x` (Lemma 12).
//!
//! Per §2.3, components of the condensation-cut timestamps are min/max
//! folds over only the per-node extremal members of `X`, so building each
//! cut costs `O(|N_X| · |P|)` — a one-time cost per nonatomic event,
//! amortized across all relation evaluations (Key Idea 1).

use crate::cut::{Cut, EventSet};
use crate::execution::{EventId, Execution, ProcessId};
use crate::nonatomic::NonatomicEvent;

/// The four condensation cuts of Definition 10 / Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondensationKind {
    /// `C1(X) = ∩⇓X`: intersection of causal pasts.
    IntersectPast,
    /// `C2(X) = ∪⇓X`: union of causal pasts.
    UnionPast,
    /// `C3(X) = ∩⇑X`: intersection of causal-future complements.
    IntersectFuture,
    /// `C4(X) = ∪⇑X`: union of causal-future complements.
    UnionFuture,
}

impl CondensationKind {
    /// All four kinds, in Table-2 order.
    pub const ALL: [CondensationKind; 4] = [
        CondensationKind::IntersectPast,
        CondensationKind::UnionPast,
        CondensationKind::IntersectFuture,
        CondensationKind::UnionFuture,
    ];

    /// Paper notation for the cut.
    pub fn symbol(self) -> &'static str {
        match self {
            CondensationKind::IntersectPast => "∩⇓X",
            CondensationKind::UnionPast => "∪⇓X",
            CondensationKind::IntersectFuture => "∩⇑X",
            CondensationKind::UnionFuture => "∪⇑X",
        }
    }

    /// Table-2 label C1–C4.
    pub fn label(self) -> &'static str {
        match self {
            CondensationKind::IntersectPast => "C1",
            CondensationKind::UnionPast => "C2",
            CondensationKind::IntersectFuture => "C3",
            CondensationKind::UnionFuture => "C4",
        }
    }
}

/// `↓e` (Definition 8) via timestamps: the prefix length at node `i` is
/// `T(e)[i]`, the number of events at `i` that precede-or-equal `e`.
pub fn causal_past(exec: &Execution, e: EventId) -> Cut {
    Cut::from_counts_unchecked(exec.clock(e).components().to_vec())
}

/// `e⇑` (Definition 9) via reverse timestamps:
/// `T(e⇑)[i] = |E_i| − Tᴿ(e)[i] + 1` — the 1-indexed position of the
/// first event at node `i` that happens at-or-after `e`.
///
/// (The paper prints this expression as `|E_i| − Tᴿ(x)[i] − 1`, counting
/// positions relative to a convention that drops the two dummies; with
/// our uniform Definition-13/15 counting — `⊥ᵢ` included everywhere — the
/// `+1` form is the one that satisfies Definition 9 extensionally, which
/// the `ccf_matches_definition_9` test verifies. See `EXPERIMENTS.md`.)
pub fn ccf(exec: &Execution, e: EventId) -> Cut {
    let counts = (0..exec.num_processes())
        .map(|i| exec.len(ProcessId(i as u32)) - exec.rclock(e)[i] + 1)
        .collect();
    Cut::from_counts_unchecked(counts)
}

/// `↓e` computed extensionally from the ground-truth causality relation.
pub fn causal_past_extensional(exec: &Execution, e: EventId) -> EventSet {
    EventSet::from_events(exec, exec.all_events().filter(|&f| exec.precedes_eq(f, e)))
}

/// `e⇑` computed extensionally, literally per Definition 9:
/// `{e' | e' ⋡ e} ∪ {eᵢ | eᵢ ≽ e ∧ (∀e'ᵢ ≺ eᵢ : e'ᵢ ⋡ e)}`.
pub fn ccf_extensional(exec: &Execution, e: EventId) -> EventSet {
    let mut s = EventSet::from_events(exec, exec.all_events().filter(|&f| !exec.precedes_eq(e, f)));
    // The earliest event at each node that is ≽ e.
    for p in 0..exec.num_processes() {
        let pid = ProcessId(p as u32);
        for idx in 0..exec.len(pid) {
            let f = EventId {
                process: pid,
                index: idx,
            };
            if exec.precedes_eq(e, f) {
                s.insert(f);
                break;
            }
        }
    }
    s
}

/// A condensation cut of `X` via the Table-2 timestamp formulas, folding
/// only over the per-node extremal members (§2.3): the earliest member
/// per node for `C1`/`C3`, the latest for `C2`/`C4`.
pub fn condensation(exec: &Execution, x: &NonatomicEvent, kind: CondensationKind) -> Cut {
    let mut counts = vec![0u32; exec.num_processes()];
    condense_into(exec, x, kind, &mut counts);
    Cut::from_counts_unchecked(counts)
}

/// [`condensation`] writing its counts into a caller-provided row,
/// folding timestamp arena rows directly — no per-member allocation.
/// Used by [`crate::linear::EventSummary`] to fill its flat summary
/// storage in place.
pub fn condense_into(
    exec: &Execution,
    x: &NonatomicEvent,
    kind: CondensationKind,
    out: &mut [u32],
) {
    debug_assert_eq!(out.len(), exec.num_processes());
    let ts = exec.timestamps();
    let intersect = matches!(
        kind,
        CondensationKind::IntersectPast | CondensationKind::IntersectFuture
    );
    out.fill(if intersect { u32::MAX } else { 0 });
    for &n in x.node_set() {
        let member = if intersect {
            x.earliest_at(n).expect("node in N_X")
        } else {
            x.latest_at(n).expect("node in N_X")
        };
        match kind {
            CondensationKind::IntersectPast => {
                for (slot, &c) in out.iter_mut().zip(ts.forward_row(member)) {
                    *slot = (*slot).min(c);
                }
            }
            CondensationKind::UnionPast => {
                for (slot, &c) in out.iter_mut().zip(ts.forward_row(member)) {
                    *slot = (*slot).max(c);
                }
            }
            CondensationKind::IntersectFuture => {
                for (i, (slot, &r)) in out.iter_mut().zip(ts.reverse_row(member)).enumerate() {
                    let c = exec.len(ProcessId(i as u32)) - r + 1;
                    *slot = (*slot).min(c);
                }
            }
            CondensationKind::UnionFuture => {
                for (i, (slot, &r)) in out.iter_mut().zip(ts.reverse_row(member)).enumerate() {
                    let c = exec.len(ProcessId(i as u32)) - r + 1;
                    *slot = (*slot).max(c);
                }
            }
        }
    }
}

/// A condensation cut computed extensionally, literally per the set
/// definitions in Table 2 column 2 (folding over **all** members of `X`).
/// Ground truth for [`condensation`].
pub fn condensation_extensional(
    exec: &Execution,
    x: &NonatomicEvent,
    kind: CondensationKind,
) -> EventSet {
    let mut acc: Option<EventSet> = None;
    for member in x.events() {
        let cut_set = match kind {
            CondensationKind::IntersectPast | CondensationKind::UnionPast => {
                causal_past_extensional(exec, member)
            }
            CondensationKind::IntersectFuture | CondensationKind::UnionFuture => {
                ccf_extensional(exec, member)
            }
        };
        acc = Some(match acc {
            None => cut_set,
            Some(mut a) => {
                match kind {
                    CondensationKind::IntersectPast | CondensationKind::IntersectFuture => {
                        a.intersect_with(&cut_set)
                    }
                    CondensationKind::UnionPast | CondensationKind::UnionFuture => {
                        a.union_with(&cut_set)
                    }
                }
                a
            }
        });
    }
    acc.expect("nonatomic events are non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionBuilder;

    /// A 3-process execution with enough structure to exercise pasts and
    /// futures: p0: a s1 r3 ; p1: r1 b s2 ; p2: s3 r2 c
    /// messages: s1->r1, s2->r2, s3->r3.
    fn exec3() -> (Execution, Vec<EventId>) {
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s3, m3) = bld.send(2);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let r3 = bld.recv(0, m3).unwrap();
        let b = bld.internal(1);
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let c = bld.internal(2);
        let e = bld.build().unwrap();
        (e, vec![a, s1, r3, r1, b, s2, s3, r2, c])
    }

    #[test]
    fn causal_past_matches_extensional() {
        let (e, evs) = exec3();
        for &x in &evs {
            let fast = causal_past(&e, x);
            let slow = causal_past_extensional(&e, x);
            assert_eq!(
                Cut::from_event_set(&e, &slow).unwrap(),
                fast,
                "↓{x} mismatch"
            );
        }
    }

    #[test]
    fn ccf_matches_definition_9() {
        let (e, evs) = exec3();
        for &x in &evs {
            let fast = ccf(&e, x);
            let slow = ccf_extensional(&e, x);
            assert_eq!(
                Cut::from_event_set(&e, &slow).unwrap(),
                fast,
                "{x}⇑ mismatch"
            );
        }
    }

    #[test]
    fn past_cut_has_unique_maximal_event() {
        // ↓y has a unique maximal event: y itself (§2.2).
        let (e, evs) = exec3();
        for &y in &evs {
            let c = causal_past(&e, y);
            let surface = c.surface();
            let maximal: Vec<EventId> = surface
                .iter()
                .copied()
                .filter(|&z| surface.iter().all(|&w| !e.precedes(z, w)))
                .collect();
            assert_eq!(maximal, vec![y], "unique maximal of ↓{y}");
        }
    }

    #[test]
    fn ccf_cut_has_unique_minimal_surface_event() {
        // x⇑ has a unique minimal event among its surface: x itself.
        let (e, evs) = exec3();
        for &x in &evs {
            let c = ccf(&e, x);
            let surface = c.surface();
            let minimal: Vec<EventId> = surface
                .iter()
                .copied()
                .filter(|&z| surface.iter().all(|&w| !e.precedes(w, z)))
                .collect();
            assert_eq!(minimal, vec![x], "unique minimal of S({x}⇑)");
        }
    }

    #[test]
    fn past_is_downward_closed_ccf_is_not_necessarily() {
        let (e, evs) = exec3();
        // ↓e is downward-closed in (E, ≺).
        for &x in &evs {
            let set = causal_past(&e, x).to_event_set(&e);
            for ev in set.events() {
                for w in e.all_events() {
                    if e.precedes(w, ev) {
                        assert!(set.contains(w), "↓{x} must contain {w} ≺ {ev}");
                    }
                }
            }
        }
        // e⇑ is generally not: find a witness in this execution.
        let mut witness = false;
        for &x in &evs {
            let set = ccf(&e, x).to_event_set(&e);
            'outer: for ev in set.events() {
                for w in e.all_events() {
                    if e.precedes(w, ev) && !set.contains(w) {
                        witness = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(witness, "some x⇑ should fail global downward closure");
    }

    #[test]
    fn condensation_cuts_are_cuts_lemma_11() {
        let (e, evs) = exec3();
        let x = NonatomicEvent::new(&e, [evs[0], evs[4], evs[8]]).unwrap();
        for kind in CondensationKind::ALL {
            let ext = condensation_extensional(&e, &x, kind);
            // Lemma 11: the set is a cut (per-process prefix incl. ⊥).
            let as_cut = Cut::from_event_set(&e, &ext)
                .unwrap_or_else(|_| panic!("{} is not a cut", kind.symbol()));
            // And the timestamp construction agrees (Corollary 17).
            assert_eq!(as_cut, condensation(&e, &x, kind), "{}", kind.symbol());
        }
    }

    #[test]
    fn condensation_on_many_shapes() {
        // Compare fast vs extensional across every nonempty subset of a
        // pool of 6 application events.
        let (e, evs) = exec3();
        let pool: Vec<EventId> = evs.iter().copied().take(6).collect();
        for mask in 1u32..(1 << pool.len()) {
            let members: Vec<EventId> = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, &ev)| ev)
                .collect();
            let x = NonatomicEvent::new(&e, members).unwrap();
            for kind in CondensationKind::ALL {
                let ext = condensation_extensional(&e, &x, kind);
                let fast = condensation(&e, &x, kind);
                assert_eq!(
                    Cut::from_event_set(&e, &ext).unwrap(),
                    fast,
                    "{} on mask {mask:b}",
                    kind.symbol()
                );
            }
        }
    }

    #[test]
    fn lemma_12_surface_properties() {
        let (e, evs) = exec3();
        let x = NonatomicEvent::new(&e, [evs[1], evs[4], evs[8]]).unwrap();
        let members: Vec<EventId> = x.events().collect();

        // 12.1 ∀e' ∈ S(∩⇓X) ∀x ∈ X : e' ≼ x
        let c1 = condensation(&e, &x, CondensationKind::IntersectPast);
        for z in c1.surface() {
            if z.index == 0 {
                continue; // ⊥ surface events precede everything anyway
            }
            for &m in &members {
                assert!(e.precedes_eq(z, m), "12.1: {z} ≼ {m}");
            }
        }
        // 12.2 ∀e' ∈ S(∪⇓X) ∃x ∈ X : e' ≼ x
        let c2 = condensation(&e, &x, CondensationKind::UnionPast);
        for z in c2.surface() {
            if z.index == 0 {
                continue;
            }
            assert!(
                members.iter().any(|&m| e.precedes_eq(z, m)),
                "12.2: {z} ≼ some x"
            );
        }
        // 12.3 ∀e' ∈ S(∩⇑X) ∃x ∈ X : x ≼ e'
        let c3 = condensation(&e, &x, CondensationKind::IntersectFuture);
        for z in c3.surface() {
            assert!(
                members.iter().any(|&m| e.precedes_eq(m, z)),
                "12.3: some x ≼ {z}"
            );
        }
        // 12.4 ∀e' ∈ S(∪⇑X) ∀x ∈ X : x ≼ e'
        let c4 = condensation(&e, &x, CondensationKind::UnionFuture);
        for z in c4.surface() {
            for &m in &members {
                assert!(e.precedes_eq(m, z), "12.4: {m} ≼ {z}");
            }
        }
    }

    #[test]
    fn future_components_always_past_bottom() {
        // Components of C3/C4 are always ≥ 2 for application events
        // (no first-event-≽-x can be a ⊥). This is what makes the
        // linear-time scans guard-free (see crate::linear).
        let (e, evs) = exec3();
        let x = NonatomicEvent::new(&e, [evs[0], evs[6]]).unwrap();
        for kind in [
            CondensationKind::IntersectFuture,
            CondensationKind::UnionFuture,
        ] {
            let c = condensation(&e, &x, kind);
            for i in 0..e.num_processes() {
                assert!(c.count(i) >= 2, "{}[{i}] ≥ 2", kind.symbol());
            }
        }
    }

    #[test]
    fn singleton_condensations_are_the_event_cuts() {
        let (e, evs) = exec3();
        for &ev in &evs {
            let x = NonatomicEvent::new(&e, [ev]).unwrap();
            assert_eq!(
                condensation(&e, &x, CondensationKind::IntersectPast),
                causal_past(&e, ev)
            );
            assert_eq!(
                condensation(&e, &x, CondensationKind::UnionPast),
                causal_past(&e, ev)
            );
            assert_eq!(
                condensation(&e, &x, CondensationKind::IntersectFuture),
                ccf(&e, ev)
            );
            assert_eq!(
                condensation(&e, &x, CondensationKind::UnionFuture),
                ccf(&e, ev)
            );
        }
    }

    #[test]
    fn c1_subset_c2_and_c3_subset_c4() {
        let (e, evs) = exec3();
        let x = NonatomicEvent::new(&e, [evs[0], evs[3], evs[8]]).unwrap();
        let c1 = condensation(&e, &x, CondensationKind::IntersectPast);
        let c2 = condensation(&e, &x, CondensationKind::UnionPast);
        let c3 = condensation(&e, &x, CondensationKind::IntersectFuture);
        let c4 = condensation(&e, &x, CondensationKind::UnionFuture);
        assert!(c1.is_subset(&c2));
        assert!(c3.is_subset(&c4));
    }
}
