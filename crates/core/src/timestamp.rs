//! The timestamp structure of an execution (paper §2.3).
//!
//! Each atomic event `e` carries
//!
//! * a **forward** vector timestamp `T(e)` (Definition 13):
//!   `T(e)[i] = |{e_i | e_i ≼ e}|` — the number of events on node `i`
//!   that causally precede or equal `e` (canonical Fidge/Mattern clocks,
//!   extended to the dummy `⊥ᵢ`/`⊤ᵢ` events), and
//! * a **reverse** vector timestamp `Tᴿ(e)` (Definition 14):
//!   `Tᴿ(e)[i] = |{e_i | e_i ≽ e}|` — the number of events on node `i`
//!   causally at or after `e`.
//!
//! `(E, ≺)` is isomorphic to `(𝒯, <)` where `𝒯 = {T(e)}` and `<` is the
//! strict component-wise vector order; both structures are established in
//! a single forward and a single backward pass over the trace.
//!
//! ## Storage layout
//!
//! All timestamps live in two flat `u32` arenas (one forward, one
//! reverse), row-major with stride `|P|`: the row of event `(p, i)`
//! starts at `(row_base[p] + i) · |P|`. Consecutive events of a process
//! occupy consecutive rows, so the per-process scans of the relation
//! evaluation machinery walk adjacent memory with zero pointer chasing.
//! Rows are exposed as `&[u32]` ([`Timestamps::forward_row`]) or as the
//! `Copy` comparison wrapper [`ClockView`].

use crate::execution::{EventId, EventKind, Message};
use crate::linear::Evaluator;
use crate::nonatomic::NonatomicEvent;
use crate::proxy_relations::ProxySummary;
use crate::vclock::ClockView;

/// Forward and reverse vector timestamps for every event of an execution,
/// stored in two contiguous row-major arenas.
///
/// Owned by [`crate::execution::Execution`]; establishing it is the
/// "one-time cost" of §2.3, amortized over all later relation evaluations
/// (Key Idea 1).
#[derive(Clone, Debug)]
pub struct Timestamps {
    /// Clock width `|P|` — also the arena row stride.
    width: usize,
    /// First row of each process's chain within the arenas.
    row_base: Vec<usize>,
    forward: Box<[u32]>,
    reverse: Box<[u32]>,
}

impl Timestamps {
    /// Establish the timestamp structure for a trace.
    ///
    /// `kinds` are the per-process event kinds including both dummies;
    /// `order` lists the application events in a linearization of `≺`.
    pub(crate) fn establish(
        kinds: &[Vec<EventKind>],
        messages: &[Message],
        order: &[EventId],
    ) -> Timestamps {
        let width = kinds.len();
        let mut row_base = Vec::with_capacity(width);
        let mut rows = 0usize;
        for k in kinds {
            row_base.push(rows);
            rows += k.len();
        }
        fn row(base: &[u32], r: usize, width: usize) -> &[u32] {
            &base[r * width..(r + 1) * width]
        }
        // Rows are computed into a scratch buffer and copied in, because a
        // row under construction may read rows at arbitrary offsets (the
        // matching send/receive event's row).
        let mut scratch = vec![0u32; width];

        // ---- forward pass -------------------------------------------------
        let mut forward = vec![0u32; rows * width].into_boxed_slice();
        // T(⊥ᵢ) = unit vector at i.
        for (p, &base) in row_base.iter().enumerate() {
            forward[base * width + p] = 1;
        }
        for &e in order {
            let p = e.process.idx();
            let i = e.index as usize;
            // Local predecessor, floored at all-ones (⊥ⱼ ≺ e for every j).
            for (s, &v) in scratch
                .iter_mut()
                .zip(row(&forward, row_base[p] + i - 1, width))
            {
                *s = v.max(1);
            }
            if let EventKind::Recv { msg } = kinds[p][i] {
                let snd = messages[msg as usize].send;
                let srow = row(
                    &forward,
                    row_base[snd.process.idx()] + snd.index as usize,
                    width,
                );
                for (s, &v) in scratch.iter_mut().zip(srow) {
                    *s = (*s).max(v);
                }
            }
            scratch[p] += 1;
            let o = (row_base[p] + i) * width;
            forward[o..o + width].copy_from_slice(&scratch);
        }
        // T(⊤ᵢ)[j] = |E_j| − 1 for j ≠ i (everything except ⊤ⱼ), |E_i| at i.
        for (p, &base) in row_base.iter().enumerate() {
            let last = kinds[p].len() - 1;
            let o = (base + last) * width;
            for (j, slot) in forward[o..o + width].iter_mut().enumerate() {
                *slot = kinds[j].len() as u32 - 1;
            }
            forward[o + p] = kinds[p].len() as u32;
        }

        // ---- reverse pass -------------------------------------------------
        let mut reverse = vec![0u32; rows * width].into_boxed_slice();
        // Tᴿ(⊤ᵢ) = unit vector at i.
        for (p, &base) in row_base.iter().enumerate() {
            let last = kinds[p].len() - 1;
            reverse[(base + last) * width + p] = 1;
        }
        for &e in order.iter().rev() {
            let p = e.process.idx();
            let i = e.index as usize;
            // Local successor, floored at all-ones (e ≺ ⊤ⱼ for every j).
            for (s, &v) in scratch
                .iter_mut()
                .zip(row(&reverse, row_base[p] + i + 1, width))
            {
                *s = v.max(1);
            }
            if let EventKind::Send { msg } = kinds[p][i] {
                if let Some(r) = messages[msg as usize].recv {
                    let rrow = row(
                        &reverse,
                        row_base[r.process.idx()] + r.index as usize,
                        width,
                    );
                    for (s, &v) in scratch.iter_mut().zip(rrow) {
                        *s = (*s).max(v);
                    }
                }
            }
            scratch[p] += 1;
            let o = (row_base[p] + i) * width;
            reverse[o..o + width].copy_from_slice(&scratch);
        }
        // Tᴿ(⊥ᵢ)[j] = |E_j| − 1 for j ≠ i (everything except ⊥ⱼ), |E_i| at i.
        for (p, &base) in row_base.iter().enumerate() {
            let o = base * width;
            for (j, slot) in reverse[o..o + width].iter_mut().enumerate() {
                *slot = kinds[j].len() as u32 - 1;
            }
            reverse[o + p] = kinds[p].len() as u32;
        }

        Timestamps {
            width,
            row_base,
            forward,
            reverse,
        }
    }

    /// Number of processes `|P|` (the clock width and the arena stride).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    fn offset(&self, e: EventId) -> usize {
        (self.row_base[e.process.idx()] + e.index as usize) * self.width
    }

    /// Forward timestamp row `T(e)` as a raw arena slice.
    #[inline]
    pub fn forward_row(&self, e: EventId) -> &[u32] {
        let o = self.offset(e);
        &self.forward[o..o + self.width]
    }

    /// Reverse timestamp row `Tᴿ(e)` as a raw arena slice.
    #[inline]
    pub fn reverse_row(&self, e: EventId) -> &[u32] {
        let o = self.offset(e);
        &self.reverse[o..o + self.width]
    }

    /// Forward timestamp `T(e)`.
    #[inline]
    pub fn forward(&self, e: EventId) -> ClockView<'_> {
        ClockView::new(self.forward_row(e))
    }

    /// Reverse timestamp `Tᴿ(e)`.
    #[inline]
    pub fn reverse(&self, e: EventId) -> ClockView<'_> {
        ClockView::new(self.reverse_row(e))
    }

    /// Single component `T(e)[i]` without forming a row view.
    #[inline]
    pub fn forward_component(&self, e: EventId, i: usize) -> u32 {
        self.forward[self.offset(e) + i]
    }

    /// Single component `Tᴿ(e)[i]` without forming a row view.
    #[inline]
    pub fn reverse_component(&self, e: EventId, i: usize) -> u32 {
        self.reverse[self.offset(e) + i]
    }
}

/// Segment indices within a [`SummaryArena`] proxy plane, mirroring the
/// `[lo | hi | c1 | c2 | c3 | c4]` layout of
/// [`crate::linear::EventSummary`].
pub(crate) mod arena_seg {
    pub const LO: usize = 0;
    pub const HI: usize = 1;
    pub const C1: usize = 2;
    pub const C2: usize = 3;
    pub const C3: usize = 4;
    pub const C4: usize = 5;
    /// Number of segments per proxy.
    pub const COUNT: usize = 6;
}

/// Every event's four proxy extrema packed into one flat `u32` matrix
/// keyed by event index — the structure-of-arrays twin of a
/// `Vec<ProxySummary>`.
///
/// Layout is **transposed** relative to [`EventSummary`]: the value of
/// segment `seg` of proxy `p` at node `i` for event `e` lives at
/// `((p·6 + seg)·|P| + i)·n + e`. Fixing `(p, seg, i)` therefore yields
/// one contiguous row across *all* events, which is exactly what the
/// batched row-sweep kernel
/// ([`SummaryArena::eval_row_batch`](crate::proxy_relations)) consumes:
/// sweeping a slab of `Y` events against a fixed `X` walks unit-stride
/// memory per node, with no per-pair summary lookups.
///
/// Built once per [`crate::detector::Detector`] (or explicitly via
/// [`SummaryArena::build`]); replaces per-pair `summarize_proxies`
/// fetches on the batched path.
#[derive(Clone, Debug)]
pub struct SummaryArena {
    n: usize,
    width: usize,
    /// `data[((proxy·6 + seg)·width + node)·n + event]`.
    data: Box<[u32]>,
    /// `|N_X|` per event. Per-node proxies share the base event's node
    /// set, so one count serves both proxies.
    node_counts: Box<[u32]>,
}

impl SummaryArena {
    /// Pack precomputed proxy summaries into the arena.
    ///
    /// `width` is the clock width `|P|`; all summaries must come from an
    /// execution of that width.
    pub fn build<'s, I>(width: usize, summaries: I) -> SummaryArena
    where
        I: IntoIterator<Item = &'s ProxySummary>,
    {
        let summaries: Vec<&ProxySummary> = summaries.into_iter().collect();
        let n = summaries.len();
        let mut data = vec![0u32; 2 * arena_seg::COUNT * width * n].into_boxed_slice();
        let mut node_counts = vec![0u32; n].into_boxed_slice();
        for (e, s) in summaries.iter().enumerate() {
            debug_assert_eq!(
                s.lower().node_count(),
                s.upper().node_count(),
                "per-node proxies share the base event's node set"
            );
            node_counts[e] = s.lower().node_count() as u32;
            for (p, es) in [s.lower(), s.upper()].into_iter().enumerate() {
                debug_assert_eq!(es.lo_row().len(), width, "summary width mismatch");
                let rows = [
                    es.lo_row(),
                    es.hi_row(),
                    es.c1_row(),
                    es.c2_row(),
                    es.c3_row(),
                    es.c4_row(),
                ];
                for (seg, row) in rows.into_iter().enumerate() {
                    for (i, &v) in row.iter().enumerate() {
                        data[((p * arena_seg::COUNT + seg) * width + i) * n + e] = v;
                    }
                }
            }
        }
        SummaryArena {
            n,
            width,
            data,
            node_counts,
        }
    }

    /// Summarize `events` (Definition-2 per-node proxies) and pack.
    pub fn new(eval: &Evaluator<'_>, events: &[NonatomicEvent]) -> SummaryArena {
        let summaries: Vec<ProxySummary> =
            events.iter().map(|e| eval.summarize_proxies(e)).collect();
        SummaryArena::build(eval.execution().num_processes(), summaries.iter())
    }

    /// Number of packed events.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the arena empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Clock width `|P|`.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `|N_X|` of event `e`.
    #[inline]
    pub fn node_count(&self, e: usize) -> u32 {
        self.node_counts[e]
    }

    /// All per-event node counts, indexed by event.
    #[inline]
    pub(crate) fn node_counts(&self) -> &[u32] {
        &self.node_counts
    }

    /// The contiguous all-events row for `(proxy, seg, node)`.
    #[inline]
    pub(crate) fn plane(&self, proxy: usize, seg: usize, node: usize) -> &[u32] {
        let o = ((proxy * arena_seg::COUNT + seg) * self.width + node) * self.n;
        &self.data[o..o + self.n]
    }

    /// Single value for `(proxy, seg, node, event)`.
    #[inline]
    pub(crate) fn value(&self, proxy: usize, seg: usize, node: usize, event: usize) -> u32 {
        self.data[((proxy * arena_seg::COUNT + seg) * self.width + node) * self.n + event]
    }

    /// Comparisons the fused kernel spends on pair `(x, y)`:
    /// `4·(2|N_X| + 2|N_Y| + 2·min(|N_X|, |N_Y|))`. The batched kernel
    /// performs the same comparisons (Theorem 20 bounds the *counts*;
    /// batching only amortizes orchestration), so reports quote the same
    /// figure.
    #[inline]
    pub fn pair_comparisons(&self, x: usize, y: usize) -> u64 {
        let nx = self.node_counts[x] as u64;
        let ny = self.node_counts[y] as u64;
        4 * (2 * nx + 2 * ny + 2 * nx.min(ny))
    }
}

#[cfg(test)]
mod tests {
    use crate::execution::{EventId, ExecutionBuilder, ProcessId};

    #[test]
    fn forward_clocks_simple_message() {
        // p0: ⊥ a s ⊤ ; p1: ⊥ r b ⊤ ; message s -> r.
        let mut bld = ExecutionBuilder::new(2);
        let a = bld.internal(0);
        let (s, m) = bld.send(0);
        let r = bld.recv(1, m).unwrap();
        let b = bld.internal(1);
        let e = bld.build().unwrap();

        assert_eq!(e.clock(a).components(), &[2, 1]);
        assert_eq!(e.clock(s).components(), &[3, 1]);
        assert_eq!(e.clock(r).components(), &[3, 2]);
        assert_eq!(e.clock(b).components(), &[3, 3]);
        // Dummies.
        assert_eq!(e.clock(e.bottom(ProcessId(0))).components(), &[1, 0]);
        assert_eq!(e.clock(e.bottom(ProcessId(1))).components(), &[0, 1]);
        assert_eq!(e.clock(e.top(ProcessId(0))).components(), &[4, 3]);
        assert_eq!(e.clock(e.top(ProcessId(1))).components(), &[3, 4]);
    }

    #[test]
    fn reverse_clocks_simple_message() {
        let mut bld = ExecutionBuilder::new(2);
        let a = bld.internal(0);
        let (s, m) = bld.send(0);
        let r = bld.recv(1, m).unwrap();
        let b = bld.internal(1);
        let e = bld.build().unwrap();

        // Tᴿ(e)[i] = number of events at i causally ≽ e.
        assert_eq!(e.rclock(b).components(), &[1, 2]);
        assert_eq!(e.rclock(r).components(), &[1, 3]);
        assert_eq!(e.rclock(s).components(), &[2, 3]);
        assert_eq!(e.rclock(a).components(), &[3, 3]);
        // ⊤₀ is followed only by itself; ⊥₀ is followed by everything
        // except the foreign ⊥₁.
        assert_eq!(e.rclock(e.top(ProcessId(0))).components(), &[1, 0]);
        assert_eq!(e.rclock(e.bottom(ProcessId(0))).components(), &[4, 3]);
    }

    #[test]
    fn isomorphism_with_strict_vector_order() {
        // Definition 13: e ≺ e' iff T(e) < T(e') — verified exhaustively
        // against the graph ground truth on a nontrivial execution.
        let mut bld = ExecutionBuilder::new(3);
        let _a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let _c = bld.internal(2);
        let r1 = bld.recv(1, m1).unwrap();
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let (s3, m3) = bld.send(2);
        let _r3 = bld.recv(0, m3).unwrap();
        let _d = bld.internal(1);
        let e = bld.build().unwrap();
        let _ = (s1, r1, s2, r2, s3);

        let all: Vec<EventId> = e.all_events().collect();
        for &x in &all {
            for &y in &all {
                let ground = e.precedes_slow(x, y);
                assert_eq!(
                    e.clock(x).lt(e.clock(y)),
                    ground,
                    "vector order vs ground truth on {x}, {y}"
                );
                assert_eq!(e.precedes(x, y), ground, "fast test on {x}, {y}");
            }
        }
    }

    #[test]
    fn reverse_counts_mirror_forward() {
        // |{e_i ≽ e}| computed by brute force must match Tᴿ.
        let mut bld = ExecutionBuilder::new(3);
        bld.internal(0);
        let (_, m1) = bld.send(0);
        bld.recv(2, m1).unwrap();
        bld.internal(1);
        let (_, m2) = bld.send(2);
        bld.recv(1, m2).unwrap();
        let e = bld.build().unwrap();

        let all: Vec<EventId> = e.all_events().collect();
        for &x in &all {
            for i in 0..e.num_processes() {
                let count = all
                    .iter()
                    .filter(|&&y| y.process.idx() == i && (y == x || e.precedes_slow(x, y)))
                    .count() as u32;
                assert_eq!(
                    e.rclock(x)[i],
                    count,
                    "Tᴿ({x})[{i}] should count events at {i} after-or-equal {x}"
                );
            }
        }
    }

    #[test]
    fn forward_counts_match_definition_13() {
        let mut bld = ExecutionBuilder::new(3);
        bld.internal(1);
        let (_, m1) = bld.send(1);
        bld.recv(0, m1).unwrap();
        bld.internal(2);
        let (_, m2) = bld.send(0);
        bld.recv(2, m2).unwrap();
        let e = bld.build().unwrap();

        let all: Vec<EventId> = e.all_events().collect();
        for &x in &all {
            for i in 0..e.num_processes() {
                let count = all
                    .iter()
                    .filter(|&&y| y.process.idx() == i && (y == x || e.precedes_slow(y, x)))
                    .count() as u32;
                assert_eq!(
                    e.clock(x)[i],
                    count,
                    "T({x})[{i}] should count events at {i} before-or-equal {x}"
                );
            }
        }
    }

    #[test]
    fn empty_process_clocks() {
        let mut bld = ExecutionBuilder::new(2);
        bld.internal(0);
        let e = bld.build().unwrap();
        // Process 1 has only dummies; its ⊤ still sees all of p0 except ⊤₀.
        assert_eq!(e.clock(e.top(ProcessId(1))).components(), &[2, 2]);
        assert_eq!(e.clock(e.bottom(ProcessId(1))).components(), &[0, 1]);
    }

    #[test]
    fn rows_are_contiguous_per_process() {
        // Consecutive events of a process occupy consecutive arena rows.
        let mut bld = ExecutionBuilder::new(3);
        bld.internal(1);
        bld.internal(1);
        let (_, m) = bld.send(0);
        bld.recv(2, m).unwrap();
        let e = bld.build().unwrap();
        let ts = e.timestamps();
        for p in 0..3 {
            let pid = ProcessId(p as u32);
            for i in 0..e.len(pid) - 1 {
                let a = ts
                    .forward_row(EventId {
                        process: pid,
                        index: i,
                    })
                    .as_ptr();
                let b = ts
                    .forward_row(EventId {
                        process: pid,
                        index: i + 1,
                    })
                    .as_ptr();
                assert_eq!(unsafe { a.add(ts.width()) }, b, "p{p} row {i}");
            }
        }
    }

    #[test]
    fn component_accessors_match_rows() {
        let mut bld = ExecutionBuilder::new(2);
        let a = bld.internal(0);
        let (_, m) = bld.send(0);
        let r = bld.recv(1, m).unwrap();
        let e = bld.build().unwrap();
        let ts = e.timestamps();
        for ev in [a, r] {
            for i in 0..2 {
                assert_eq!(ts.forward_component(ev, i), ts.forward_row(ev)[i]);
                assert_eq!(ts.reverse_component(ev, i), ts.reverse_row(ev)[i]);
            }
        }
    }
}
