//! The timestamp structure of an execution (paper §2.3).
//!
//! Each atomic event `e` carries
//!
//! * a **forward** vector timestamp `T(e)` (Definition 13):
//!   `T(e)[i] = |{e_i | e_i ≼ e}|` — the number of events on node `i`
//!   that causally precede or equal `e` (canonical Fidge/Mattern clocks,
//!   extended to the dummy `⊥ᵢ`/`⊤ᵢ` events), and
//! * a **reverse** vector timestamp `Tᴿ(e)` (Definition 14):
//!   `Tᴿ(e)[i] = |{e_i | e_i ≽ e}|` — the number of events on node `i`
//!   causally at or after `e`.
//!
//! `(E, ≺)` is isomorphic to `(𝒯, <)` where `𝒯 = {T(e)}` and `<` is the
//! strict component-wise vector order; both structures are established in
//! a single forward and a single backward pass over the trace.

use crate::execution::{EventId, EventKind, Message};
use crate::vclock::VectorClock;

/// Forward and reverse vector timestamps for every event of an execution.
///
/// Owned by [`crate::execution::Execution`]; establishing it is the
/// "one-time cost" of §2.3, amortized over all later relation evaluations
/// (Key Idea 1).
#[derive(Clone, Debug)]
pub struct Timestamps {
    forward: Vec<Vec<VectorClock>>,
    reverse: Vec<Vec<VectorClock>>,
}

impl Timestamps {
    /// Establish the timestamp structure for a trace.
    ///
    /// `kinds` are the per-process event kinds including both dummies;
    /// `order` lists the application events in a linearization of `≺`.
    pub(crate) fn establish(
        kinds: &[Vec<EventKind>],
        messages: &[Message],
        order: &[EventId],
    ) -> Timestamps {
        let width = kinds.len();
        let ones = VectorClock::ones(width);

        // ---- forward pass -------------------------------------------------
        let mut forward: Vec<Vec<VectorClock>> = kinds
            .iter()
            .map(|k| vec![VectorClock::zero(width); k.len()])
            .collect();
        // T(⊥ᵢ) = unit vector at i.
        for (p, fwd) in forward.iter_mut().enumerate() {
            fwd[0] = VectorClock::unit(width, p);
        }
        for &e in order {
            let p = e.process.idx();
            let i = e.index as usize;
            // Local predecessor, floored at all-ones (⊥ⱼ ≺ e for every j).
            let mut v = forward[p][i - 1].join(&ones);
            if let EventKind::Recv { msg } = kinds[p][i] {
                let s = messages[msg as usize].send;
                let sv = forward[s.process.idx()][s.index as usize].clone();
                v.join_assign(&sv);
            }
            v.tick(p);
            forward[p][i] = v;
        }
        // T(⊤ᵢ)[j] = |E_j| − 1 for j ≠ i (everything except ⊤ⱼ), |E_i| at i.
        for p in 0..width {
            let last = kinds[p].len() - 1;
            let mut v = VectorClock::from_components(
                kinds.iter().map(|k| k.len() as u32 - 1).collect(),
            );
            v.components_mut()[p] = kinds[p].len() as u32;
            forward[p][last] = v;
        }

        // ---- reverse pass -------------------------------------------------
        let mut reverse: Vec<Vec<VectorClock>> = kinds
            .iter()
            .map(|k| vec![VectorClock::zero(width); k.len()])
            .collect();
        // Tᴿ(⊤ᵢ) = unit vector at i.
        for (p, rev) in reverse.iter_mut().enumerate() {
            let last = kinds[p].len() - 1;
            rev[last] = VectorClock::unit(width, p);
        }
        for &e in order.iter().rev() {
            let p = e.process.idx();
            let i = e.index as usize;
            // Local successor, floored at all-ones (e ≺ ⊤ⱼ for every j).
            let mut v = reverse[p][i + 1].join(&ones);
            if let EventKind::Send { msg } = kinds[p][i] {
                if let Some(r) = messages[msg as usize].recv {
                    let rv = reverse[r.process.idx()][r.index as usize].clone();
                    v.join_assign(&rv);
                }
            }
            v.tick(p);
            reverse[p][i] = v;
        }
        // Tᴿ(⊥ᵢ)[j] = |E_j| − 1 for j ≠ i (everything except ⊥ⱼ), |E_i| at i.
        for p in 0..width {
            let mut v = VectorClock::from_components(
                kinds.iter().map(|k| k.len() as u32 - 1).collect(),
            );
            v.components_mut()[p] = kinds[p].len() as u32;
            reverse[p][0] = v;
        }

        Timestamps { forward, reverse }
    }

    /// Number of processes `|P|` (the clock width).
    #[inline]
    pub fn width(&self) -> usize {
        self.forward.len()
    }

    /// Forward timestamp `T(e)`.
    #[inline]
    pub fn forward(&self, e: EventId) -> &VectorClock {
        &self.forward[e.process.idx()][e.index as usize]
    }

    /// Reverse timestamp `Tᴿ(e)`.
    #[inline]
    pub fn reverse(&self, e: EventId) -> &VectorClock {
        &self.reverse[e.process.idx()][e.index as usize]
    }
}

#[cfg(test)]
mod tests {
    use crate::execution::{EventId, ExecutionBuilder, ProcessId};

    #[test]
    fn forward_clocks_simple_message() {
        // p0: ⊥ a s ⊤ ; p1: ⊥ r b ⊤ ; message s -> r.
        let mut bld = ExecutionBuilder::new(2);
        let a = bld.internal(0);
        let (s, m) = bld.send(0);
        let r = bld.recv(1, m).unwrap();
        let b = bld.internal(1);
        let e = bld.build().unwrap();

        assert_eq!(e.clock(a).components(), &[2, 1]);
        assert_eq!(e.clock(s).components(), &[3, 1]);
        assert_eq!(e.clock(r).components(), &[3, 2]);
        assert_eq!(e.clock(b).components(), &[3, 3]);
        // Dummies.
        assert_eq!(e.clock(e.bottom(ProcessId(0))).components(), &[1, 0]);
        assert_eq!(e.clock(e.bottom(ProcessId(1))).components(), &[0, 1]);
        assert_eq!(e.clock(e.top(ProcessId(0))).components(), &[4, 3]);
        assert_eq!(e.clock(e.top(ProcessId(1))).components(), &[3, 4]);
    }

    #[test]
    fn reverse_clocks_simple_message() {
        let mut bld = ExecutionBuilder::new(2);
        let a = bld.internal(0);
        let (s, m) = bld.send(0);
        let r = bld.recv(1, m).unwrap();
        let b = bld.internal(1);
        let e = bld.build().unwrap();

        // Tᴿ(e)[i] = number of events at i causally ≽ e.
        assert_eq!(e.rclock(b).components(), &[1, 2]);
        assert_eq!(e.rclock(r).components(), &[1, 3]);
        assert_eq!(e.rclock(s).components(), &[2, 3]);
        assert_eq!(e.rclock(a).components(), &[3, 3]);
        // ⊤₀ is followed only by itself; ⊥₀ is followed by everything
        // except the foreign ⊥₁.
        assert_eq!(e.rclock(e.top(ProcessId(0))).components(), &[1, 0]);
        assert_eq!(e.rclock(e.bottom(ProcessId(0))).components(), &[4, 3]);
    }

    #[test]
    fn isomorphism_with_strict_vector_order() {
        // Definition 13: e ≺ e' iff T(e) < T(e') — verified exhaustively
        // against the graph ground truth on a nontrivial execution.
        let mut bld = ExecutionBuilder::new(3);
        let _a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let _c = bld.internal(2);
        let r1 = bld.recv(1, m1).unwrap();
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let (s3, m3) = bld.send(2);
        let _r3 = bld.recv(0, m3).unwrap();
        let _d = bld.internal(1);
        let e = bld.build().unwrap();
        let _ = (s1, r1, s2, r2, s3);

        let all: Vec<EventId> = e.all_events().collect();
        for &x in &all {
            for &y in &all {
                let ground = e.precedes_slow(x, y);
                assert_eq!(
                    e.clock(x).lt(e.clock(y)),
                    ground,
                    "vector order vs ground truth on {x}, {y}"
                );
                assert_eq!(e.precedes(x, y), ground, "fast test on {x}, {y}");
            }
        }
    }

    #[test]
    fn reverse_counts_mirror_forward() {
        // |{e_i ≽ e}| computed by brute force must match Tᴿ.
        let mut bld = ExecutionBuilder::new(3);
        bld.internal(0);
        let (_, m1) = bld.send(0);
        bld.recv(2, m1).unwrap();
        bld.internal(1);
        let (_, m2) = bld.send(2);
        bld.recv(1, m2).unwrap();
        let e = bld.build().unwrap();

        let all: Vec<EventId> = e.all_events().collect();
        for &x in &all {
            for i in 0..e.num_processes() {
                let count = all
                    .iter()
                    .filter(|&&y| y.process.idx() == i && (y == x || e.precedes_slow(x, y)))
                    .count() as u32;
                assert_eq!(
                    e.rclock(x)[i],
                    count,
                    "Tᴿ({x})[{i}] should count events at {i} after-or-equal {x}"
                );
            }
        }
    }

    #[test]
    fn forward_counts_match_definition_13() {
        let mut bld = ExecutionBuilder::new(3);
        bld.internal(1);
        let (_, m1) = bld.send(1);
        bld.recv(0, m1).unwrap();
        bld.internal(2);
        let (_, m2) = bld.send(0);
        bld.recv(2, m2).unwrap();
        let e = bld.build().unwrap();

        let all: Vec<EventId> = e.all_events().collect();
        for &x in &all {
            for i in 0..e.num_processes() {
                let count = all
                    .iter()
                    .filter(|&&y| y.process.idx() == i && (y == x || e.precedes_slow(y, x)))
                    .count() as u32;
                assert_eq!(
                    e.clock(x)[i],
                    count,
                    "T({x})[{i}] should count events at {i} before-or-equal {x}"
                );
            }
        }
    }

    #[test]
    fn empty_process_clocks() {
        let mut bld = ExecutionBuilder::new(2);
        bld.internal(0);
        let e = bld.build().unwrap();
        // Process 1 has only dummies; its ⊤ still sees all of p0 except ⊤₀.
        assert_eq!(e.clock(e.top(ProcessId(1))).components(), &[2, 2]);
        assert_eq!(e.clock(e.bottom(ProcessId(1))).components(), &[0, 1]);
    }
}
