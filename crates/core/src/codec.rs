//! Minimal hand-rolled binary codec primitives.
//!
//! The serving layer persists monitor state (snapshots, WAL records)
//! and frames protocol messages. Those paths must encode and decode in
//! every environment the workspace builds in — including offline dev
//! environments where the serde crates are typecheck-only stubs — so
//! they use this self-contained little-endian codec instead of serde.
//!
//! The format is deliberately boring: fixed-width LE integers,
//! length-prefixed byte strings, one tag byte per enum/option. Every
//! decoder returns [`CodecError`] instead of panicking, because these
//! bytes come from disk and from the wire.

use std::fmt;

/// Decode failure: the bytes do not describe a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value did.
    Truncated,
    /// A tag, length, or invariant did not hold; says which.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Malformed(what) => write!(f, "malformed encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// usize, stored as u64 for portability.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Length-prefixed slice of u32s.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Length-prefixed slice of u64s.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Raw bytes with no length prefix (headers, magics).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Sequential decoder over a byte slice.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, off: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.off
    }

    /// True when everything was consumed — decoders should end here.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn offset(&self) -> usize {
        self.off
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// usize stored as u64; rejects values that do not fit.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("usize overflow"))
    }

    /// bool from one byte; rejects anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool tag")),
        }
    }

    /// A length prefix that must be satisfiable by the remaining input.
    /// Guards collection pre-allocation against corrupt lengths.
    pub fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let n = self.usize()?;
        // Every element costs at least one byte, so a length beyond the
        // remaining byte count can only come from corruption.
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.len_prefix()?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::Malformed("utf-8"))
    }

    /// Length-prefixed u32s.
    pub fn u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.usize()?;
        if n.saturating_mul(4) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Length-prefixed u64s.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.usize()?;
        if n.saturating_mul(8) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Raw bytes with no length prefix (headers, magics).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_u32s(&[10, 20]);
        w.put_u64s(&[30]);
        w.put_raw(b"XY");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.u32s().unwrap(), vec![10, 20]);
        assert_eq!(r.u64s().unwrap(), vec![30]);
        assert_eq!(r.raw(2).unwrap(), b"XY");
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~2^64 bytes follow
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).bytes(), Err(CodecError::Truncated));
        assert_eq!(Reader::new(&bytes).u32s(), Err(CodecError::Truncated));
        assert_eq!(Reader::new(&bytes).u64s(), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_bool_tag_is_malformed() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(CodecError::Malformed("bool tag")));
    }

    #[test]
    fn non_utf8_string_is_malformed() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).string(),
            Err(CodecError::Malformed("utf-8"))
        );
    }
}
