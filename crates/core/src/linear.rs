//! Linear-time evaluation of the Table-1 relations (paper §2.4–2.5,
//! Theorems 19 and 20) with exact comparison counting.
//!
//! ## How the conditions work
//!
//! Every relation reduces to tests of `≪̸(↓Y, X⇑)` between a past cut of
//! `Y` and a future cut of `X` (third column of Table 1). In the count
//! representation of [`crate::cut`], `≪̸(D, F) ⟺ ∃i : D[i] ≥ 2 ∧
//! D[i] ≥ F[i]`; and because future-cut components are never 1 for
//! application events, the `≥ 2` guard is subsumed and each node costs
//! exactly **one** integer comparison.
//!
//! Key Idea 2 restricts the existential scan from all of `P` to a node
//! set of one of the operands. Per-relation, the sound restricted scans
//! (each verified here by exhaustive and property tests, and each
//! provable from the chain structure of process histories) are:
//!
//! | relation | condition per node | sound scans | Auto cost |
//! |----------|--------------------|-------------|-----------|
//! | R1, R1' | `∀i∈N_X: ∩⇓Y[i] ≥ hi_X[i]`  /  `∀i∈N_Y: lo_Y[i] ≥ ∪⇑X[i]` | N_X, N_Y | `min(|N_X|,|N_Y|)` |
//! | R2      | `∀i∈N_X: ∪⇓Y[i] ≥ hi_X[i]` | N_X | `|N_X|` |
//! | R2'     | `∃i: ∪⇓Y[i] ≥ ∪⇑X[i]` | N_Y (N_X is **unsound**) | `|N_Y|` |
//! | R3      | `∃i: ∩⇓Y[i] ≥ ∩⇑X[i]` | N_X (N_Y is **unsound**) | `|N_X|` |
//! | R3'     | `∀i∈N_Y: lo_Y[i] ≥ ∩⇑X[i]` | N_Y | `|N_Y|` |
//! | R4, R4' | `∃i: ∪⇓Y[i] ≥ ∩⇑X[i]` | N_X, N_Y | `min(|N_X|,|N_Y|)` |
//!
//! **Reproduction note.** Theorem 20 of the paper claims
//! `min(|N_X|, |N_Y|)` for R2' and R3 as well. We could not reproduce
//! that bound: the `N_X`-restricted scan for R2' and the `N_Y`-restricted
//! scan for R3 return wrong answers on concrete executions (see the
//! `thm19_*_scan_unsound` tests below, and a stronger information-
//! theoretic counterexample pair in `tests/linear_discrepancy.rs`),
//! so [`ScanSet::Auto`] uses the sound side — `|N_Y|` for R2' and
//! `|N_X|` for R3. All other Theorem-20 bounds reproduce exactly; see
//! `EXPERIMENTS.md`.
//!
//! Comparisons are **not** short-circuited, so the returned counts are
//! deterministic and equal the worst-case bounds — what the paper's
//! complexity statements measure.

use synchrel_obs::Meter;

use crate::cut::Cut;
use crate::execution::Execution;
use crate::nonatomic::NonatomicEvent;
use crate::pastfuture::{condense_into, CondensationKind};
use crate::relations::Relation;

const SEG_LO: usize = 0;
const SEG_HI: usize = 1;
const SEG_C1: usize = 2;
const SEG_C2: usize = 3;
const SEG_C3: usize = 4;
const SEG_C4: usize = 5;

/// Precomputed per-nonatomic-event data for linear-time evaluation:
/// the node set, the per-node extremal positions, and the four
/// condensation-cut timestamps (Key Idea 1's one-time cost).
///
/// All six per-node vectors (`lo`, `hi`, `C1`–`C4`) live in one flat
/// `u32` block of `6·|P|` words, so an evaluation condition scans
/// adjacent memory with no pointer chasing between cuts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSummary {
    node_list: Vec<usize>,
    width: usize,
    /// `[lo | hi | c1 | c2 | c3 | c4]`, each segment `width` long.
    data: Box<[u32]>,
}

impl EventSummary {
    /// Build the summary: `O(|N_X| · |P|)` time, `O(|P|)` space.
    pub fn new(exec: &Execution, x: &NonatomicEvent) -> Self {
        let width = exec.num_processes();
        let mut data = vec![0u32; 6 * width].into_boxed_slice();
        for &i in x.node_set() {
            data[SEG_LO * width + i] = x.lo(i);
            data[SEG_HI * width + i] = x.hi(i);
        }
        let kinds = [
            (SEG_C1, CondensationKind::IntersectPast),
            (SEG_C2, CondensationKind::UnionPast),
            (SEG_C3, CondensationKind::IntersectFuture),
            (SEG_C4, CondensationKind::UnionFuture),
        ];
        for (seg, kind) in kinds {
            condense_into(exec, x, kind, &mut data[seg * width..(seg + 1) * width]);
        }
        EventSummary {
            node_list: x.node_set().to_vec(),
            width,
            data,
        }
    }

    #[inline]
    fn seg(&self, k: usize) -> &[u32] {
        &self.data[k * self.width..(k + 1) * self.width]
    }

    /// The node set `N_X`, ascending.
    #[inline]
    pub fn node_set(&self) -> &[usize] {
        &self.node_list
    }

    /// `|N_X|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_list.len()
    }

    /// Earliest member position at node `i` (1-indexed; 0 when absent).
    #[inline]
    pub fn lo(&self, i: usize) -> u32 {
        self.data[SEG_LO * self.width + i]
    }

    /// Latest member position at node `i` (1-indexed; 0 when absent).
    #[inline]
    pub fn hi(&self, i: usize) -> u32 {
        self.data[SEG_HI * self.width + i]
    }

    /// All per-node earliest positions, as a raw row.
    #[inline]
    pub fn lo_row(&self) -> &[u32] {
        self.seg(SEG_LO)
    }

    /// All per-node latest positions, as a raw row.
    #[inline]
    pub fn hi_row(&self) -> &[u32] {
        self.seg(SEG_HI)
    }

    /// Timestamp row of `C1(X) = ∩⇓X`.
    #[inline]
    pub fn c1_row(&self) -> &[u32] {
        self.seg(SEG_C1)
    }

    /// Timestamp row of `C2(X) = ∪⇓X`.
    #[inline]
    pub fn c2_row(&self) -> &[u32] {
        self.seg(SEG_C2)
    }

    /// Timestamp row of `C3(X) = ∩⇑X`.
    #[inline]
    pub fn c3_row(&self) -> &[u32] {
        self.seg(SEG_C3)
    }

    /// Timestamp row of `C4(X) = ∪⇑X`.
    #[inline]
    pub fn c4_row(&self) -> &[u32] {
        self.seg(SEG_C4)
    }

    /// `C1(X) = ∩⇓X` as an owned cut.
    #[inline]
    pub fn c1(&self) -> Cut {
        Cut::from_counts_unchecked(self.seg(SEG_C1).to_vec())
    }

    /// `C2(X) = ∪⇓X` as an owned cut.
    #[inline]
    pub fn c2(&self) -> Cut {
        Cut::from_counts_unchecked(self.seg(SEG_C2).to_vec())
    }

    /// `C3(X) = ∩⇑X` as an owned cut.
    #[inline]
    pub fn c3(&self) -> Cut {
        Cut::from_counts_unchecked(self.seg(SEG_C3).to_vec())
    }

    /// `C4(X) = ∪⇑X` as an owned cut.
    #[inline]
    pub fn c4(&self) -> Cut {
        Cut::from_counts_unchecked(self.seg(SEG_C4).to_vec())
    }
}

/// Which node set drives the scan of an evaluation condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScanSet {
    /// The provably sound scan with the fewest comparisons (the default).
    Auto,
    /// Scan the nodes of `X`.
    NodesOfX,
    /// Scan the nodes of `Y`.
    NodesOfY,
    /// Scan every node (`|P|` comparisons) — the unrestricted baseline
    /// before Key Idea 2.
    FullP,
}

/// Result of a counted evaluation: the verdict and the number of integer
/// comparisons performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComparisonCount {
    /// Whether the relation holds.
    pub holds: bool,
    /// Integer comparisons performed (deterministic; no short-circuit).
    pub comparisons: u64,
}

/// The paper's Theorem-20 comparison bound for a relation.
pub fn theorem20_bound(rel: Relation, nx: usize, ny: usize) -> u64 {
    match rel {
        Relation::R1
        | Relation::R1p
        | Relation::R2p
        | Relation::R3
        | Relation::R4
        | Relation::R4p => nx.min(ny) as u64,
        Relation::R2 => nx as u64,
        Relation::R3p => ny as u64,
    }
}

/// The comparison bound we could actually prove sound (differs from
/// [`theorem20_bound`] for R2' and R3 — see the module docs).
pub fn sound_bound(rel: Relation, nx: usize, ny: usize) -> u64 {
    match rel {
        Relation::R1 | Relation::R1p | Relation::R4 | Relation::R4p => nx.min(ny) as u64,
        Relation::R2 | Relation::R3 => nx as u64,
        Relation::R2p | Relation::R3p => ny as u64,
    }
}

/// Linear-time relation evaluator over a fixed execution.
#[derive(Clone, Copy, Debug)]
pub struct Evaluator<'a> {
    exec: &'a Execution,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator for `exec`.
    pub fn new(exec: &'a Execution) -> Self {
        Evaluator { exec }
    }

    /// The underlying execution.
    pub fn execution(&self) -> &'a Execution {
        self.exec
    }

    /// Precompute the summary of a nonatomic event (Key Idea 1).
    pub fn summarize(&self, x: &NonatomicEvent) -> EventSummary {
        EventSummary::new(self.exec, x)
    }

    /// One-shot convenience: summarize both operands and evaluate.
    ///
    /// For repeated queries over the same events, build the summaries
    /// once with [`Evaluator::summarize`] and use [`Evaluator::eval`].
    pub fn holds(&self, rel: Relation, x: &NonatomicEvent, y: &NonatomicEvent) -> bool {
        let sx = self.summarize(x);
        let sy = self.summarize(y);
        self.eval(rel, &sx, &sy)
    }

    /// Evaluate `rel(X, Y)` from precomputed summaries with the Auto scan.
    pub fn eval(&self, rel: Relation, sx: &EventSummary, sy: &EventSummary) -> bool {
        self.eval_counted(rel, sx, sy).holds
    }

    /// Evaluate with the Auto scan, returning the comparison count.
    pub fn eval_counted(
        &self,
        rel: Relation,
        sx: &EventSummary,
        sy: &EventSummary,
    ) -> ComparisonCount {
        let scan = match rel {
            Relation::R1 | Relation::R1p | Relation::R4 | Relation::R4p => {
                if sx.node_count() <= sy.node_count() {
                    ScanSet::NodesOfX
                } else {
                    ScanSet::NodesOfY
                }
            }
            Relation::R2 | Relation::R3 => ScanSet::NodesOfX,
            Relation::R2p | Relation::R3p => ScanSet::NodesOfY,
        };
        self.eval_scanned(rel, sx, sy, scan)
            .expect("Auto always picks a supported scan")
    }

    /// [`Evaluator::eval_counted`] reporting to a [`Meter`].
    ///
    /// Each evaluation is reported with the comparisons actually spent
    /// and both per-evaluation budgets — [`sound_bound`] and the
    /// paper's claimed [`theorem20_bound`] — so the meter can certify
    /// Theorem 20 (and quantify the R2'/R3 discrepancy) without
    /// recomputing node counts. With a [`synchrel_obs::NoopMeter`]
    /// this monomorphizes to exactly [`Evaluator::eval_counted`].
    #[inline]
    pub fn eval_counted_with<M: Meter>(
        &self,
        rel: Relation,
        sx: &EventSummary,
        sy: &EventSummary,
        meter: &M,
    ) -> ComparisonCount {
        let c = self.eval_counted(rel, sx, sy);
        if meter.enabled() {
            let (nx, ny) = (sx.node_count(), sy.node_count());
            meter.on_relation(
                rel.slot(),
                c.comparisons,
                sound_bound(rel, nx, ny),
                theorem20_bound(rel, nx, ny),
            );
        }
        c
    }

    /// Produce a human-actionable witness for the verdict of
    /// `rel(X, Y)`:
    ///
    /// * if the relation **holds** and is existential (R2', R3, R4,
    ///   R4'), a pair `(x, y)` with `x ≺ y` realizing it;
    /// * if the relation **fails** and is universal (R1, R1', R2, R3'),
    ///   a pair `(x, y)` with `¬(x ≺ y)` violating it;
    /// * `None` otherwise (a holding universal / failing existential has
    ///   no single-pair certificate).
    ///
    /// Runs on the per-node extremal events only — `O(|N_X| · |N_Y|)`
    /// causality checks at worst, never an `|X| × |Y|` scan. (Chain
    /// structure makes extremes sufficient: if any pair realizes or
    /// violates a relation, an extremal pair does.)
    pub fn witness(
        &self,
        rel: Relation,
        x: &NonatomicEvent,
        y: &NonatomicEvent,
    ) -> Option<(crate::execution::EventId, crate::execution::EventId)> {
        let exec = self.exec;
        let holds = self.holds(rel, x, y);
        match (rel, holds) {
            // ∃-relations that hold: exhibit a realizing pair.
            (Relation::R4 | Relation::R4p, true) => {
                // Some x precedes some y; check per-node earliest x
                // against per-node latest y.
                for &i in x.node_set() {
                    let xe = x.earliest_at(i).expect("node in N_X");
                    for &j in y.node_set() {
                        let ye = y.latest_at(j).expect("node in N_Y");
                        if exec.precedes(xe, ye) {
                            return Some((xe, ye));
                        }
                    }
                }
                None
            }
            (Relation::R3, true) => {
                // A witness x preceding all y: some per-node earliest x
                // (checked against per-node earliest y — the hardest).
                x.node_set()
                    .iter()
                    .map(|&i| x.earliest_at(i).expect("node in N_X"))
                    .find(|&xe| {
                        y.node_set()
                            .iter()
                            .all(|&j| exec.precedes(xe, y.earliest_at(j).expect("in N_Y")))
                    })
                    .map(|xe| {
                        let ye = y.events().next().expect("non-empty");
                        (xe, ye)
                    })
            }
            (Relation::R2p, true) => {
                // A witness y following all x: some per-node latest y
                // (checked against per-node latest x — the hardest).
                y.node_set()
                    .iter()
                    .map(|&j| y.latest_at(j).expect("node in N_Y"))
                    .find(|&ye| {
                        x.node_set()
                            .iter()
                            .all(|&i| exec.precedes(x.latest_at(i).expect("in N_X"), ye))
                    })
                    .map(|ye| {
                        let xe = x.events().next().expect("non-empty");
                        (xe, ye)
                    })
            }
            // ∀-relations that fail: exhibit a violating pair. If any
            // (x, y) has ¬(x ≺ y), then so does (latest x at x's node,
            // earliest y at y's node) — so extremes suffice.
            (Relation::R1 | Relation::R1p, false) => {
                for &i in x.node_set() {
                    let xe = x.latest_at(i).expect("node in N_X");
                    for &j in y.node_set() {
                        let ye = y.earliest_at(j).expect("node in N_Y");
                        if !exec.precedes(xe, ye) {
                            return Some((xe, ye));
                        }
                    }
                }
                None
            }
            (Relation::R2, false) => {
                // An x with no y after it: some per-node latest x,
                // checked against per-node latest y (the easiest
                // targets).
                x.node_set()
                    .iter()
                    .map(|&i| x.latest_at(i).expect("node in N_X"))
                    .find(|&xe| {
                        y.node_set()
                            .iter()
                            .all(|&j| !exec.precedes(xe, y.latest_at(j).expect("in N_Y")))
                    })
                    .map(|xe| {
                        let ye = y.events().next().expect("non-empty");
                        (xe, ye)
                    })
            }
            (Relation::R3p, false) => {
                // A y with no x before it: some per-node earliest y,
                // checked against per-node earliest x.
                y.node_set()
                    .iter()
                    .map(|&j| y.earliest_at(j).expect("node in N_Y"))
                    .find(|&ye| {
                        x.node_set()
                            .iter()
                            .all(|&i| !exec.precedes(x.earliest_at(i).expect("in N_X"), ye))
                    })
                    .map(|ye| {
                        let xe = x.events().next().expect("non-empty");
                        (xe, ye)
                    })
            }
            _ => None,
        }
    }

    /// Evaluate with an explicit scan set, for ablation.
    ///
    /// Returns `None` when the relation has no formula over the requested
    /// node set (R2 over `N_Y`, R3' over `N_X`). **Beware**: the `N_X`
    /// scan for R2' and the `N_Y` scan for R3 are implemented because the
    /// paper claims them, but they are unsound — they can return the
    /// wrong verdict (see the module docs).
    pub fn eval_scanned(
        &self,
        rel: Relation,
        sx: &EventSummary,
        sy: &EventSummary,
        scan: ScanSet,
    ) -> Option<ComparisonCount> {
        let width = self.exec.num_processes();
        let full: Vec<usize> = (0..width).collect();
        // ∀-style conditions over `lhs[i] ≥ rhs[i]`, guarded: nodes where
        // the guard row is 0 are vacuous (only reachable via FullP).
        let forall = |lhs: &[u32], rhs: &[u32], guard: &[u32], nodes: &[usize]| {
            let mut ok = true;
            for &i in nodes {
                if guard[i] != 0 && lhs[i] < rhs[i] {
                    ok = false;
                }
            }
            ComparisonCount {
                holds: ok,
                comparisons: nodes.len() as u64,
            }
        };
        // ∃-style single-test scans (≪̸ between two cut rows).
        let exists = |d: &[u32], f: &[u32], nodes: &[usize]| {
            let mut any = false;
            for &i in nodes {
                if d[i] >= f[i] {
                    any = true;
                }
            }
            ComparisonCount {
                holds: any,
                comparisons: nodes.len() as u64,
            }
        };

        Some(match (rel, scan) {
            // ---- R1 / R1': ∀x∀y --------------------------------------
            (Relation::R1 | Relation::R1p, ScanSet::NodesOfX) => {
                forall(sy.c1_row(), sx.hi_row(), sx.hi_row(), &sx.node_list)
            }
            (Relation::R1 | Relation::R1p, ScanSet::NodesOfY) => {
                forall(sy.lo_row(), sx.c4_row(), sy.lo_row(), &sy.node_list)
            }
            (Relation::R1 | Relation::R1p, ScanSet::FullP) => {
                forall(sy.c1_row(), sx.hi_row(), sx.hi_row(), &full)
            }
            (Relation::R1 | Relation::R1p, ScanSet::Auto) => {
                return self.eval_scanned(
                    rel,
                    sx,
                    sy,
                    if sx.node_count() <= sy.node_count() {
                        ScanSet::NodesOfX
                    } else {
                        ScanSet::NodesOfY
                    },
                )
            }

            // ---- R2: ∀x∃y ---------------------------------------------
            (Relation::R2, ScanSet::NodesOfX | ScanSet::Auto) => {
                forall(sy.c2_row(), sx.hi_row(), sx.hi_row(), &sx.node_list)
            }
            (Relation::R2, ScanSet::FullP) => forall(sy.c2_row(), sx.hi_row(), sx.hi_row(), &full),
            (Relation::R2, ScanSet::NodesOfY) => return None,

            // ---- R2': ∃y∀x — single test ∪⇓Y ≪̸ ∪⇑X -------------------
            (Relation::R2p, ScanSet::NodesOfY | ScanSet::Auto) => {
                exists(sy.c2_row(), sx.c4_row(), &sy.node_list)
            }
            (Relation::R2p, ScanSet::NodesOfX) => {
                // Paper's claimed scan; unsound (see module docs).
                exists(sy.c2_row(), sx.c4_row(), &sx.node_list)
            }
            (Relation::R2p, ScanSet::FullP) => exists(sy.c2_row(), sx.c4_row(), &full),

            // ---- R3: ∃x∀y — single test ∩⇓Y ≪̸ ∩⇑X ---------------------
            (Relation::R3, ScanSet::NodesOfX | ScanSet::Auto) => {
                exists(sy.c1_row(), sx.c3_row(), &sx.node_list)
            }
            (Relation::R3, ScanSet::NodesOfY) => {
                // Paper's claimed scan; unsound (see module docs).
                exists(sy.c1_row(), sx.c3_row(), &sy.node_list)
            }
            (Relation::R3, ScanSet::FullP) => exists(sy.c1_row(), sx.c3_row(), &full),

            // ---- R3': ∀y∃x ---------------------------------------------
            (Relation::R3p, ScanSet::NodesOfY | ScanSet::Auto) => {
                forall(sy.lo_row(), sx.c3_row(), sy.lo_row(), &sy.node_list)
            }
            (Relation::R3p, ScanSet::FullP) => forall(sy.lo_row(), sx.c3_row(), sy.lo_row(), &full),
            (Relation::R3p, ScanSet::NodesOfX) => return None,

            // ---- R4 / R4': ∃x∃y — single test ∪⇓Y ≪̸ ∩⇑X ---------------
            (Relation::R4 | Relation::R4p, ScanSet::NodesOfX) => {
                exists(sy.c2_row(), sx.c3_row(), &sx.node_list)
            }
            (Relation::R4 | Relation::R4p, ScanSet::NodesOfY) => {
                exists(sy.c2_row(), sx.c3_row(), &sy.node_list)
            }
            (Relation::R4 | Relation::R4p, ScanSet::FullP) => {
                exists(sy.c2_row(), sx.c3_row(), &full)
            }
            (Relation::R4 | Relation::R4p, ScanSet::Auto) => {
                return self.eval_scanned(
                    rel,
                    sx,
                    sy,
                    if sx.node_count() <= sy.node_count() {
                        ScanSet::NodesOfX
                    } else {
                        ScanSet::NodesOfY
                    },
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{EventId, ExecutionBuilder};
    use crate::relations::naive;

    /// Build every nonempty subset pair (disjoint) from a pool and check
    /// the Auto evaluation against the naive ground truth.
    fn check_exhaustive(e: &Execution, pool: &[EventId]) {
        let ev = Evaluator::new(e);
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(e, xs).unwrap();
                let y = NonatomicEvent::new(e, ys).unwrap();
                let sx = ev.summarize(&x);
                let sy = ev.summarize(&y);
                for rel in Relation::ALL {
                    let got = ev.eval_counted(rel, &sx, &sy);
                    let want = naive(e, rel, &x, &y);
                    assert_eq!(
                        got.holds, want,
                        "{rel} on X={xm:b} Y={ym:b}: linear={} naive={want}",
                        got.holds
                    );
                    assert_eq!(
                        got.comparisons,
                        sound_bound(rel, x.node_count(), y.node_count()),
                        "{rel} comparison count"
                    );
                    // FullP scan must agree with Auto.
                    let full = ev.eval_scanned(rel, &sx, &sy, ScanSet::FullP).unwrap();
                    assert_eq!(full.holds, want, "{rel} FullP on X={xm:b} Y={ym:b}");
                    assert_eq!(full.comparisons, e.num_processes() as u64);
                }
            }
        }
    }

    #[test]
    fn exhaustive_chain() {
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let b = bld.internal(1);
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let e = bld.build().unwrap();
        check_exhaustive(&e, &[a, s1, r1, b, s2, r2]);
    }

    #[test]
    fn exhaustive_diamond() {
        // p0 fans out to p1 and p2, which join at p3.
        let mut bld = ExecutionBuilder::new(4);
        let (s1, m1) = bld.send(0);
        let (s2, m2) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let r2 = bld.recv(2, m2).unwrap();
        let (s3, m3) = bld.send(1);
        let (s4, m4) = bld.send(2);
        let r3 = bld.recv(3, m3).unwrap();
        let r4 = bld.recv(3, m4).unwrap();
        let e = bld.build().unwrap();
        let _ = (s2, r1, r2, s4);
        check_exhaustive(&e, &[s1, s3, r3, r4, s2, r2]);
    }

    #[test]
    fn exhaustive_concurrent() {
        // Three mostly-independent processes with one late message.
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let b = bld.internal(1);
        let c = bld.internal(2);
        let d = bld.internal(0);
        let (s, m) = bld.send(1);
        let r = bld.recv(2, m).unwrap();
        let e = bld.build().unwrap();
        check_exhaustive(&e, &[a, b, c, d, s, r]);
    }

    #[test]
    fn thm19_r3_ny_scan_unsound() {
        // X = {s1@p0}; Y = {y1@p1, y2@p2}; s1 precedes both y's, so
        // R3 = ∃x∀y holds — but neither y knows anything of the other's
        // node, so no violation of ≪(∩⇓Y, ∩⇑X) is visible at N_Y.
        let mut bld = ExecutionBuilder::new(3);
        let (s1, m1) = bld.send(0);
        let (s2, m2) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let r2 = bld.recv(2, m2).unwrap();
        let y1 = bld.internal(1);
        let y2 = bld.internal(2);
        let e = bld.build().unwrap();
        let _ = (r1, r2, s2);
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, [s1]).unwrap();
        let y = NonatomicEvent::new(&e, [y1, y2]).unwrap();
        assert!(naive(&e, Relation::R3, &x, &y));
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        assert!(ev.eval(Relation::R3, &sx, &sy), "Auto (N_X) scan is sound");
        let ny = ev
            .eval_scanned(Relation::R3, &sx, &sy, ScanSet::NodesOfY)
            .unwrap();
        assert!(
            !ny.holds,
            "the paper's N_Y scan misses the violation — Theorem 19/20 \
             discrepancy documented in EXPERIMENTS.md"
        );
    }

    #[test]
    fn thm19_r2p_nx_scan_unsound() {
        // X = {x1@p0, x2@p1}; y*@p2 hears from both, so R2' = ∃y∀x holds —
        // but no event at an X node ever hears of an event following all
        // of X, so no violation is visible at N_X.
        let mut bld = ExecutionBuilder::new(3);
        let (x1, m1) = bld.send(0);
        let (x2, m2) = bld.send(1);
        bld.recv(2, m1).unwrap();
        bld.recv(2, m2).unwrap();
        let ystar = bld.internal(2);
        let e = bld.build().unwrap();
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, [x1, x2]).unwrap();
        let y = NonatomicEvent::new(&e, [ystar]).unwrap();
        assert!(naive(&e, Relation::R2p, &x, &y));
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        assert!(ev.eval(Relation::R2p, &sx, &sy), "Auto (N_Y) scan is sound");
        let nx = ev
            .eval_scanned(Relation::R2p, &sx, &sy, ScanSet::NodesOfX)
            .unwrap();
        assert!(
            !nx.holds,
            "the paper's N_X scan misses the violation — Theorem 19/20 \
             discrepancy documented in EXPERIMENTS.md"
        );
    }

    #[test]
    fn both_scans_sound_for_r1_r4() {
        // For R1/R1'/R4/R4' both restricted scans must agree with naive
        // on an exhaustive pool.
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let c = bld.internal(2);
        let e = bld.build().unwrap();
        let pool = [a, s1, r1, s2, r2, c];
        let ev = Evaluator::new(&e);
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                let sx = ev.summarize(&x);
                let sy = ev.summarize(&y);
                for rel in [Relation::R1, Relation::R1p, Relation::R4, Relation::R4p] {
                    let want = naive(&e, rel, &x, &y);
                    for scan in [ScanSet::NodesOfX, ScanSet::NodesOfY, ScanSet::FullP] {
                        let got = ev.eval_scanned(rel, &sx, &sy, scan).unwrap();
                        assert_eq!(got.holds, want, "{rel} {scan:?} X={xm:b} Y={ym:b}");
                    }
                }
            }
        }
    }

    #[test]
    fn unsupported_scans_return_none() {
        let mut bld = ExecutionBuilder::new(2);
        let a = bld.internal(0);
        let b = bld.internal(1);
        let e = bld.build().unwrap();
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, [a]).unwrap();
        let y = NonatomicEvent::new(&e, [b]).unwrap();
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        assert!(ev
            .eval_scanned(Relation::R2, &sx, &sy, ScanSet::NodesOfY)
            .is_none());
        assert!(ev
            .eval_scanned(Relation::R3p, &sx, &sy, ScanSet::NodesOfX)
            .is_none());
    }

    #[test]
    fn comparison_counts_match_bounds() {
        // On a wide execution the Auto counts must equal sound_bound and,
        // for the reproducible relations, theorem20_bound.
        let mut bld = ExecutionBuilder::new(6);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in 0..4 {
            xs.push(bld.internal(p));
        }
        // Chain every X node into both Y nodes so relations are nontrivial.
        for p in 0..4 {
            let (_, m) = bld.send(p);
            ys.push(bld.recv(4, m).unwrap());
            let (_, m2) = bld.send(p);
            ys.push(bld.recv(5, m2).unwrap());
        }
        let e = bld.build().unwrap();
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, xs).unwrap();
        let y = NonatomicEvent::new(&e, ys).unwrap();
        let (nx, ny) = (x.node_count(), y.node_count());
        assert_eq!((nx, ny), (4, 2));
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        for rel in Relation::ALL {
            let got = ev.eval_counted(rel, &sx, &sy);
            assert_eq!(got.comparisons, sound_bound(rel, nx, ny), "{rel}");
        }
        // Theorem 20 bounds reproduce for all but R3 (here |N_Y| < |N_X|,
        // and R3 soundly needs |N_X|).
        for rel in [
            Relation::R1,
            Relation::R1p,
            Relation::R2,
            Relation::R2p,
            Relation::R3p,
            Relation::R4,
            Relation::R4p,
        ] {
            assert_eq!(
                sound_bound(rel, nx, ny),
                theorem20_bound(rel, nx, ny),
                "{rel}"
            );
        }
        assert!(sound_bound(Relation::R3, nx, ny) > theorem20_bound(Relation::R3, nx, ny));
    }

    #[test]
    fn witnesses_are_valid() {
        // Exhaustive pool: every produced witness must certify what the
        // docs promise, and a witness must exist exactly when promised.
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let c = bld.internal(2);
        let e = bld.build().unwrap();
        let pool = [a, s1, r1, s2, r2, c];
        let ev = Evaluator::new(&e);
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                for rel in Relation::ALL {
                    let holds = naive(&e, rel, &x, &y);
                    let w = ev.witness(rel, &x, &y);
                    let expected = matches!(
                        (rel, holds),
                        (
                            Relation::R4 | Relation::R4p | Relation::R3 | Relation::R2p,
                            true
                        ) | (
                            Relation::R1 | Relation::R1p | Relation::R2 | Relation::R3p,
                            false
                        )
                    );
                    assert_eq!(
                        w.is_some(),
                        expected,
                        "witness existence for {rel} holds={holds} X={xm:b} Y={ym:b}"
                    );
                    if let Some((we, wf)) = w {
                        assert!(x.contains(we), "witness x-side member");
                        assert!(y.contains(wf), "witness y-side member");
                        match (rel, holds) {
                            (Relation::R4 | Relation::R4p, true) => {
                                assert!(e.precedes(we, wf));
                            }
                            (Relation::R3, true) => {
                                assert!(y.events().all(|ye| e.precedes(we, ye)));
                            }
                            (Relation::R2p, true) => {
                                assert!(x.events().all(|xe| e.precedes(xe, wf)));
                            }
                            (Relation::R1 | Relation::R1p, false) => {
                                assert!(!e.precedes(we, wf));
                            }
                            (Relation::R2, false) => {
                                assert!(y.events().all(|ye| !e.precedes(we, ye)));
                            }
                            (Relation::R3p, false) => {
                                assert!(x.events().all(|xe| !e.precedes(xe, wf)));
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn holds_convenience() {
        let mut bld = ExecutionBuilder::new(2);
        let (s, m) = bld.send(0);
        let r = bld.recv(1, m).unwrap();
        let e = bld.build().unwrap();
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, [s]).unwrap();
        let y = NonatomicEvent::new(&e, [r]).unwrap();
        assert!(ev.holds(Relation::R1, &x, &y));
        assert!(!ev.holds(Relation::R1, &y, &x));
    }
}
