//! ASCII space-time diagrams of executions, events, and cuts.
//!
//! Used to regenerate the paper's figures (Figures 1–3) in text form and
//! by examples for human-readable output. Each application event occupies
//! one column (its position in the construction linearization); process
//! chains are rows; cut surfaces are drawn as a marker after the surface
//! event of each row.
//!
//! ```text
//! P0 ⊥ --a---s1>0------------------|1 ⊤
//! P1 ⊥ ------<0-----b---s2>1-------|1 ⊤
//! P2 ⊥ -----------------<1----c----|1 ⊤
//! ```

use std::collections::BTreeMap;

use crate::cut::Cut;
use crate::execution::{EventId, EventKind, Execution};
use crate::nonatomic::NonatomicEvent;

/// Builder for an ASCII space-time diagram of one execution.
pub struct Diagram<'a> {
    exec: &'a Execution,
    labels: BTreeMap<EventId, String>,
    cuts: Vec<(char, Cut)>,
}

impl<'a> Diagram<'a> {
    /// Start a diagram of `exec`.
    pub fn new(exec: &'a Execution) -> Self {
        Diagram {
            exec,
            labels: BTreeMap::new(),
            cuts: Vec::new(),
        }
    }

    /// Attach a label to an event (defaults: `s<msg>`/`r<msg>` for
    /// send/receive, `.` for internal events).
    pub fn label(&mut self, e: EventId, text: impl Into<String>) -> &mut Self {
        self.labels.insert(e, text.into());
        self
    }

    /// Label every member of a nonatomic event with `prefix` plus a
    /// running number (`x1`, `x2`, …, in `(process, index)` order).
    pub fn label_event(&mut self, x: &NonatomicEvent, prefix: &str) -> &mut Self {
        for (k, e) in x.events().enumerate() {
            self.labels.insert(e, format!("{prefix}{}", k + 1));
        }
        self
    }

    /// Draw a cut: `marker` is printed after the surface event on each
    /// process row.
    pub fn cut(&mut self, marker: char, cut: &Cut) -> &mut Self {
        self.cuts.push((marker, cut.clone()));
        self
    }

    fn cell_text(&self, e: EventId) -> String {
        if let Some(l) = self.labels.get(&e) {
            return l.clone();
        }
        match self.exec.kind(e) {
            EventKind::Initial => "⊥".to_string(),
            EventKind::Final => "⊤".to_string(),
            EventKind::Internal => ".".to_string(),
            EventKind::Send { msg } => format!("s{msg}"),
            EventKind::Recv { msg } => format!("r{msg}"),
        }
    }

    /// Render the diagram.
    pub fn render(&self) -> String {
        let exec = self.exec;
        let p_count = exec.num_processes();
        // Column assignment: ⊥ = 0, app events by linearization order,
        // ⊤ = last.
        let mut col: BTreeMap<EventId, usize> = BTreeMap::new();
        for p in 0..p_count {
            col.insert(EventId::new(p as u32, 0), 0);
        }
        for (k, &e) in exec.app_order().iter().enumerate() {
            col.insert(e, k + 1);
        }
        let last_col = exec.app_order().len() + 1;
        for p in 0..p_count {
            col.insert(
                EventId::new(
                    p as u32,
                    exec.len(crate::execution::ProcessId(p as u32)) - 1,
                ),
                last_col,
            );
        }
        // Column widths: label + optional cut markers.
        let mut width = vec![1usize; last_col + 1];
        let mut cell: BTreeMap<(usize, usize), String> = BTreeMap::new();
        for e in exec.all_events() {
            let c = col[&e];
            let mut text = self.cell_text(e);
            for (marker, cut) in &self.cuts {
                if cut.surface_at(e.process.idx()) == e {
                    text.push('|');
                    text.push(*marker);
                }
            }
            width[c] = width[c].max(text.chars().count());
            cell.insert((e.process.idx(), c), text);
        }
        // Render rows.
        let mut out = String::new();
        for p in 0..p_count {
            out.push_str(&format!("P{p} "));
            for (c, w) in width.iter().enumerate() {
                let text = cell.get(&(p, c)).cloned().unwrap_or_default();
                let pad = w + 2 - text.chars().count();
                out.push_str(&text);
                for _ in 0..pad {
                    out.push('-');
                }
            }
            // Trim trailing dashes for tidiness.
            while out.ends_with('-') {
                out.pop();
            }
            out.push('\n');
        }
        if !self.cuts.is_empty() {
            out.push_str("cuts:");
            for (marker, cut) in &self.cuts {
                out.push_str(&format!(" |{marker}={cut}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionBuilder;

    #[test]
    fn renders_processes_and_events() {
        let mut b = ExecutionBuilder::new(2);
        let a = b.internal(0);
        let (s, m) = b.send(0);
        b.recv(1, m).unwrap();
        let e = b.build().unwrap();
        let mut d = Diagram::new(&e);
        d.label(a, "a");
        let out = d.render();
        assert!(out.contains("P0"), "{out}");
        assert!(out.contains("P1"), "{out}");
        assert!(out.contains('a'), "{out}");
        assert!(out.contains("s0"), "{out}");
        assert!(out.contains("r0"), "{out}");
        assert!(out.contains('⊥'), "{out}");
        assert!(out.contains('⊤'), "{out}");
        let _ = s;
    }

    #[test]
    fn renders_cut_markers() {
        let mut b = ExecutionBuilder::new(2);
        b.internal(0);
        b.internal(1);
        let e = b.build().unwrap();
        let cut = Cut::from_counts(&e, vec![2, 1]).unwrap();
        let mut d = Diagram::new(&e);
        d.cut('1', &cut);
        let out = d.render();
        assert!(out.contains("|1"), "{out}");
        assert!(out.contains("cuts:"), "{out}");
    }

    #[test]
    fn labels_nonatomic_events() {
        let mut b = ExecutionBuilder::new(2);
        let a = b.internal(0);
        let c = b.internal(1);
        let e = b.build().unwrap();
        let x = NonatomicEvent::new(&e, [a, c]).unwrap();
        let mut d = Diagram::new(&e);
        d.label_event(&x, "x");
        let out = d.render();
        assert!(out.contains("x1"), "{out}");
        assert!(out.contains("x2"), "{out}");
    }

    #[test]
    fn rows_align() {
        let mut b = ExecutionBuilder::new(3);
        b.internal(0);
        b.message(0, 1);
        b.internal(2);
        let e = b.build().unwrap();
        let out = Diagram::new(&e).render();
        let lens: Vec<usize> = out
            .lines()
            .filter(|l| l.starts_with('P'))
            .map(|l| l.trim_end_matches('-').len())
            .collect();
        assert_eq!(lens.len(), 3);
    }
}
