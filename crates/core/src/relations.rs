//! The eight causality relations of Table 1 and their reference
//! (non-linear) evaluations.
//!
//! For nonatomic events `X`, `Y` the relations are first-order quantifier
//! combinations over the atomic causality `≺`:
//!
//! | relation | expression |
//! |----------|------------|
//! | R1  | `∀x ∈ X ∀y ∈ Y : x ≺ y` |
//! | R1' | `∀y ∈ Y ∀x ∈ X : x ≺ y` (≡ R1) |
//! | R2  | `∀x ∈ X ∃y ∈ Y : x ≺ y` |
//! | R2' | `∃y ∈ Y ∀x ∈ X : x ≺ y` |
//! | R3  | `∃x ∈ X ∀y ∈ Y : x ≺ y` |
//! | R3' | `∀y ∈ Y ∃x ∈ X : x ≺ y` |
//! | R4  | `∃x ∈ X ∃y ∈ Y : x ≺ y` |
//! | R4' | `∃y ∈ Y ∃x ∈ X : x ≺ y` (≡ R4) |
//!
//! R1/R1' and R4/R4' coincide as predicates (swapping like quantifiers);
//! R2 vs R2' and R3 vs R3' differ on posets. The paper keeps all eight
//! names because the evaluation complexities differ.
//!
//! This module provides two reference evaluators used as baselines and
//! ground truth for the linear-time conditions in [`crate::linear`]:
//!
//! * [`naive`] — direct quantifier evaluation over `X × Y`
//!   (`O(|X|·|Y|)` causality checks);
//! * [`proxy_baseline`] — the evaluation the paper starts from: quantify
//!   over the per-node extremal events only, which is exactly evaluating
//!   `R(X̂, Ŷ)` over Definition-2 proxies (`|N_X| × |N_Y|` causality
//!   checks). Returns the comparison count actually performed.

use serde::{Deserialize, Serialize};

use crate::execution::Execution;
use crate::nonatomic::NonatomicEvent;

/// One of the eight Table-1 relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Relation {
    /// `∀x∀y : x ≺ y`
    R1,
    /// `∀y∀x : x ≺ y` (same predicate as R1)
    R1p,
    /// `∀x∃y : x ≺ y`
    R2,
    /// `∃y∀x : x ≺ y`
    R2p,
    /// `∃x∀y : x ≺ y`
    R3,
    /// `∀y∃x : x ≺ y`
    R3p,
    /// `∃x∃y : x ≺ y`
    R4,
    /// `∃y∃x : x ≺ y` (same predicate as R4)
    R4p,
}

impl Relation {
    /// All eight relations in Table-1 order.
    pub const ALL: [Relation; 8] = [
        Relation::R1,
        Relation::R1p,
        Relation::R2,
        Relation::R2p,
        Relation::R3,
        Relation::R3p,
        Relation::R4,
        Relation::R4p,
    ];

    /// The eight relation names in Table-1 order — the slot labels for
    /// [`synchrel_obs::CompareCounter::snapshot`].
    pub const NAMES: [&'static str; 8] = ["R1", "R1'", "R2", "R2'", "R3", "R3'", "R4", "R4'"];

    /// The paper's name for the relation.
    pub fn name(self) -> &'static str {
        match self {
            Relation::R1 => "R1",
            Relation::R1p => "R1'",
            Relation::R2 => "R2",
            Relation::R2p => "R2'",
            Relation::R3 => "R3",
            Relation::R3p => "R3'",
            Relation::R4 => "R4",
            Relation::R4p => "R4'",
        }
    }

    /// The quantifier expression from Table 1.
    pub fn quantifier_expr(self) -> &'static str {
        match self {
            Relation::R1 => "∀x∈X ∀y∈Y, x ≺ y",
            Relation::R1p => "∀y∈Y ∀x∈X, x ≺ y",
            Relation::R2 => "∀x∈X ∃y∈Y, x ≺ y",
            Relation::R2p => "∃y∈Y ∀x∈X, x ≺ y",
            Relation::R3 => "∃x∈X ∀y∈Y, x ≺ y",
            Relation::R3p => "∀y∈Y ∃x∈X, x ≺ y",
            Relation::R4 => "∃x∈X ∃y∈Y, x ≺ y",
            Relation::R4p => "∃y∈Y ∃x∈X, x ≺ y",
        }
    }

    /// The paper's evaluation condition from Table 1, column 3.
    pub fn evaluation_condition(self) -> &'static str {
        match self {
            Relation::R1 => "∏_{x∈X} [∩⇓Y ≪̸ x⇑]",
            Relation::R1p => "∏_{y∈Y} [↓y ≪̸ ∪⇑X]",
            Relation::R2 => "∏_{x∈X} [∪⇓Y ≪̸ x⇑]",
            Relation::R2p => "∪⇓Y ≪̸ ∪⇑X",
            Relation::R3 => "∩⇓Y ≪̸ ∩⇑X",
            Relation::R3p => "∏_{y∈Y} [↓y ≪̸ ∩⇑X]",
            Relation::R4 | Relation::R4p => "∪⇓Y ≪̸ ∩⇑X",
        }
    }

    /// Inverse of [`Relation::slot`]: the relation at a Table-1 index.
    /// This is the wire code used by the serving protocol, so it must
    /// stay stable across versions.
    pub fn from_slot(slot: usize) -> Option<Relation> {
        Relation::ALL.get(slot).copied()
    }

    /// Stable index in Table-1 order (`0..8`), matching the meter slot
    /// layout of [`synchrel_obs::RELATION_SLOTS`].
    pub fn slot(self) -> usize {
        match self {
            Relation::R1 => 0,
            Relation::R1p => 1,
            Relation::R2 => 2,
            Relation::R2p => 3,
            Relation::R3 => 4,
            Relation::R3p => 5,
            Relation::R4 => 6,
            Relation::R4p => 7,
        }
    }

    /// The predicate-equal partner, if any (R1≡R1', R4≡R4').
    pub fn predicate_twin(self) -> Option<Relation> {
        match self {
            Relation::R1 => Some(Relation::R1p),
            Relation::R1p => Some(Relation::R1),
            Relation::R4 => Some(Relation::R4p),
            Relation::R4p => Some(Relation::R4),
            _ => None,
        }
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ground-truth evaluation: the literal quantifier expression over all
/// member pairs, using the O(1) causality test. `O(|X| · |Y|)` checks.
pub fn naive(exec: &Execution, rel: Relation, x: &NonatomicEvent, y: &NonatomicEvent) -> bool {
    match rel {
        Relation::R1 | Relation::R1p => x
            .events()
            .all(|xe| y.events().all(|ye| exec.precedes(xe, ye))),
        Relation::R2 => x
            .events()
            .all(|xe| y.events().any(|ye| exec.precedes(xe, ye))),
        Relation::R2p => y
            .events()
            .any(|ye| x.events().all(|xe| exec.precedes(xe, ye))),
        Relation::R3 => x
            .events()
            .any(|xe| y.events().all(|ye| exec.precedes(xe, ye))),
        Relation::R3p => y
            .events()
            .all(|ye| x.events().any(|xe| exec.precedes(xe, ye))),
        Relation::R4 | Relation::R4p => x
            .events()
            .any(|xe| y.events().any(|ye| exec.precedes(xe, ye))),
    }
}

/// The `|N_X| × |N_Y|` baseline: quantify over per-node extremal events
/// only. This is exactly evaluating `R(X̂, Ŷ)` with the Definition-2
/// proxies that make each relation equivalent to its `(X, Y)` form:
///
/// * R1 over `(U_X, L_Y)` — latest per `X`-node vs earliest per `Y`-node;
/// * R2, R2' over `(U_X, U_Y)`;
/// * R3, R3' over `(L_X, L_Y)`;
/// * R4 over `(L_X, U_Y)`.
///
/// Returns `(holds, causality_checks_performed)`. The count is reported
/// without short-circuiting (the full `|N_X| × |N_Y|` worst case) so that
/// benchmark tables show the paper's baseline complexity; the boolean is
/// still computed exactly.
pub fn proxy_baseline(
    exec: &Execution,
    rel: Relation,
    x: &NonatomicEvent,
    y: &NonatomicEvent,
) -> (bool, u64) {
    let checks = (x.node_count() as u64) * (y.node_count() as u64);
    let xe_hi = || x.node_set().iter().map(|&i| x.latest_at(i).unwrap());
    let xe_lo = || x.node_set().iter().map(|&i| x.earliest_at(i).unwrap());
    let ye_hi = || y.node_set().iter().map(|&j| y.latest_at(j).unwrap());
    let ye_lo = || y.node_set().iter().map(|&j| y.earliest_at(j).unwrap());
    let holds = match rel {
        Relation::R1 | Relation::R1p => xe_hi().all(|xe| ye_lo().all(|ye| exec.precedes(xe, ye))),
        Relation::R2 => xe_hi().all(|xe| ye_hi().any(|ye| exec.precedes(xe, ye))),
        Relation::R2p => ye_hi().any(|ye| xe_hi().all(|xe| exec.precedes(xe, ye))),
        Relation::R3 => xe_lo().any(|xe| ye_lo().all(|ye| exec.precedes(xe, ye))),
        Relation::R3p => ye_lo().all(|ye| xe_lo().any(|xe| exec.precedes(xe, ye))),
        Relation::R4 | Relation::R4p => xe_lo().any(|xe| ye_hi().any(|ye| exec.precedes(xe, ye))),
    };
    (holds, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{EventId, ExecutionBuilder};

    /// p0: a s1 ; p1: r1 b s2 ; p2: r2 c — fully chained via messages.
    fn chained() -> (Execution, [EventId; 7]) {
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let b = bld.internal(1);
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let c = bld.internal(2);
        (bld.build().unwrap(), [a, s1, r1, b, s2, r2, c])
    }

    #[test]
    fn fully_ordered_pair_satisfies_all() {
        let (e, [a, s1, r1, b, ..]) = chained();
        let x = NonatomicEvent::new(&e, [a, s1]).unwrap();
        let y = NonatomicEvent::new(&e, [r1, b]).unwrap();
        for rel in Relation::ALL {
            assert!(naive(&e, rel, &x, &y), "{rel} should hold");
        }
    }

    #[test]
    fn reversed_pair_satisfies_none() {
        let (e, [a, s1, r1, b, ..]) = chained();
        let x = NonatomicEvent::new(&e, [r1, b]).unwrap();
        let y = NonatomicEvent::new(&e, [a, s1]).unwrap();
        for rel in Relation::ALL {
            assert!(!naive(&e, rel, &x, &y), "{rel} should fail");
        }
    }

    #[test]
    fn partially_ordered_pair_distinguishes_relations() {
        // X = {s1 (p0), c (p2)}, Y = {r1, b (p1)}: s1 ≺ both of Y,
        // c precedes nothing in Y.
        let (e, [_, s1, r1, b, _, _, c]) = chained();
        let x = NonatomicEvent::new(&e, [s1, c]).unwrap();
        let y = NonatomicEvent::new(&e, [r1, b]).unwrap();
        assert!(!naive(&e, Relation::R1, &x, &y));
        assert!(!naive(&e, Relation::R2, &x, &y)); // c precedes no y
        assert!(!naive(&e, Relation::R2p, &x, &y));
        assert!(naive(&e, Relation::R3, &x, &y)); // s1 precedes all y
        assert!(naive(&e, Relation::R3p, &x, &y));
        assert!(naive(&e, Relation::R4, &x, &y));
    }

    #[test]
    fn r2_vs_r2p_differ_on_posets() {
        // X = {a}, Y = {y1 (p1), y2 (p2)} where a ≺ y1 and a ≺ y2 but no
        // single structure needed — here R2 holds and R2' holds. Make R2
        // hold while R2' fails: X = {x1, x2} each preceding a *different*
        // y with no y after both.
        let mut bld = ExecutionBuilder::new(4);
        let (s1, m1) = bld.send(0);
        let (s2, m2) = bld.send(1);
        let r1 = bld.recv(2, m1).unwrap();
        let r2 = bld.recv(3, m2).unwrap();
        let e = bld.build().unwrap();
        let x = NonatomicEvent::new(&e, [s1, s2]).unwrap();
        let y = NonatomicEvent::new(&e, [r1, r2]).unwrap();
        assert!(naive(&e, Relation::R2, &x, &y), "each x precedes its recv");
        assert!(
            !naive(&e, Relation::R2p, &x, &y),
            "no single y follows both x"
        );
    }

    #[test]
    fn r3_vs_r3p_differ_on_posets() {
        // Each y is preceded by some x, but no single x precedes all y.
        let mut bld = ExecutionBuilder::new(4);
        let (s1, m1) = bld.send(0);
        let (s2, m2) = bld.send(1);
        let r1 = bld.recv(2, m1).unwrap();
        let r2 = bld.recv(3, m2).unwrap();
        let e = bld.build().unwrap();
        let x = NonatomicEvent::new(&e, [s1, s2]).unwrap();
        let y = NonatomicEvent::new(&e, [r1, r2]).unwrap();
        assert!(naive(&e, Relation::R3p, &x, &y));
        assert!(!naive(&e, Relation::R3, &x, &y));
    }

    #[test]
    fn twins_always_agree() {
        let (e, evs) = chained();
        // all 2-subsets as X and Y
        for i in 0..evs.len() {
            for j in 0..evs.len() {
                if i == j {
                    continue;
                }
                let x = NonatomicEvent::new(&e, [evs[i]]).unwrap();
                let y = NonatomicEvent::new(&e, [evs[j]]).unwrap();
                assert_eq!(
                    naive(&e, Relation::R1, &x, &y),
                    naive(&e, Relation::R1p, &x, &y)
                );
                assert_eq!(
                    naive(&e, Relation::R4, &x, &y),
                    naive(&e, Relation::R4p, &x, &y)
                );
            }
        }
    }

    #[test]
    fn proxy_baseline_matches_naive() {
        // Exhaustive over subsets of a pool, disjoint X/Y pairs.
        let (e, evs) = chained();
        let pool = &evs[..5];
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue; // evaluators assume disjoint operands
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &ev)| ev)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &ev)| ev)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                for rel in Relation::ALL {
                    let (b, checks) = proxy_baseline(&e, rel, &x, &y);
                    assert_eq!(b, naive(&e, rel, &x, &y), "{rel} on X={xm:b} Y={ym:b}");
                    assert_eq!(checks, (x.node_count() * y.node_count()) as u64);
                }
            }
        }
    }

    #[test]
    fn names_and_exprs() {
        assert_eq!(Relation::R2p.name(), "R2'");
        assert_eq!(Relation::R3.quantifier_expr(), "∃x∈X ∀y∈Y, x ≺ y");
        assert_eq!(Relation::R4.evaluation_condition(), "∪⇓Y ≪̸ ∩⇑X");
        assert_eq!(Relation::R1.predicate_twin(), Some(Relation::R1p));
        assert_eq!(Relation::R2.predicate_twin(), None);
        assert_eq!(Relation::R3p.to_string(), "R3'");
    }
}
