//! A brute-force conformance oracle for differential testing.
//!
//! The oracle deliberately shares **no machinery** with the optimized
//! evaluation paths: it materializes the full causality closure over
//! application events as an explicit boolean matrix and answers every
//! relation query by literal quantifier enumeration over member pairs
//! (`O(|X|·|Y|)` lookups). It is the slowest evaluator in the crate and
//! exists only to be obviously correct — the differential harness in
//! `synchrel-monitor` checks that the Theorem-19/20 linear conditions,
//! the fused 32-relation kernel, the [`crate::detector::Detector`]
//! modes, and the online monitor all agree with it on randomized
//! (fault-injected) executions.
//!
//! The matrix itself can be cross-checked against the timestamp-free
//! graph search [`Execution::precedes_slow`] with
//! [`Oracle::verify_against_slow`], closing the loop: quantifiers are
//! checked against the matrix, the matrix against the raw poset edges.

use std::collections::BTreeMap;

use crate::execution::{EventId, Execution};
use crate::nonatomic::{NonatomicEvent, ProxyDefinition};
use crate::proxy_relations::{Proxy, ProxyRelation, RelationSet};
use crate::relations::Relation;

/// The materialized causality closure over application events.
#[derive(Clone, Debug)]
pub struct Oracle {
    events: Vec<EventId>,
    index: BTreeMap<EventId, usize>,
    matrix: Vec<bool>,
}

impl Oracle {
    /// Build the full `n × n` closure matrix over the application events
    /// of `exec`.
    pub fn new(exec: &Execution) -> Oracle {
        let events: Vec<EventId> = exec.app_events().collect();
        let index: BTreeMap<EventId, usize> =
            events.iter().enumerate().map(|(k, &e)| (e, k)).collect();
        let n = events.len();
        let mut matrix = vec![false; n * n];
        for (i, &e) in events.iter().enumerate() {
            for (j, &f) in events.iter().enumerate() {
                matrix[i * n + j] = exec.precedes(e, f);
            }
        }
        Oracle {
            events,
            index,
            matrix,
        }
    }

    /// Number of application events covered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the oracle over an empty execution?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Matrix lookup of `e ≺ f`. Panics if either event is a dummy or
    /// outside the execution the oracle was built from.
    pub fn precedes(&self, e: EventId, f: EventId) -> bool {
        let i = self.index[&e];
        let j = self.index[&f];
        self.matrix[i * self.events.len() + j]
    }

    /// Cross-check the matrix against the timestamp-free graph search.
    /// Returns the first disagreeing pair, if any.
    pub fn verify_against_slow(&self, exec: &Execution) -> Result<(), (EventId, EventId)> {
        for &e in &self.events {
            for &f in &self.events {
                if self.precedes(e, f) != exec.precedes_slow(e, f) {
                    return Err((e, f));
                }
            }
        }
        Ok(())
    }

    /// Literal quantifier evaluation of a Table-1 relation over member
    /// pairs, using only matrix lookups.
    pub fn relation(&self, rel: Relation, x: &NonatomicEvent, y: &NonatomicEvent) -> bool {
        let xs: Vec<EventId> = x.events().collect();
        let ys: Vec<EventId> = y.events().collect();
        let pre = |a: EventId, b: EventId| self.precedes(a, b);
        match rel {
            Relation::R1 | Relation::R1p => xs.iter().all(|&xe| ys.iter().all(|&ye| pre(xe, ye))),
            Relation::R2 => xs.iter().all(|&xe| ys.iter().any(|&ye| pre(xe, ye))),
            Relation::R2p => ys.iter().any(|&ye| xs.iter().all(|&xe| pre(xe, ye))),
            Relation::R3 => xs.iter().any(|&xe| ys.iter().all(|&ye| pre(xe, ye))),
            Relation::R3p => ys.iter().all(|&ye| xs.iter().any(|&xe| pre(xe, ye))),
            Relation::R4 | Relation::R4p => xs.iter().any(|&xe| ys.iter().any(|&ye| pre(xe, ye))),
        }
    }

    /// Evaluate one relation of `ℛ` by materializing the Definition-2
    /// proxies and enumerating their member pairs.
    pub fn proxy_relation(
        &self,
        exec: &Execution,
        pr: ProxyRelation,
        x: &NonatomicEvent,
        y: &NonatomicEvent,
    ) -> bool {
        let xh = match pr.x_proxy {
            Proxy::L => x.proxy_lower(exec, ProxyDefinition::PerNode),
            Proxy::U => x.proxy_upper(exec, ProxyDefinition::PerNode),
        }
        .expect("per-node proxies always exist");
        let yh = match pr.y_proxy {
            Proxy::L => y.proxy_lower(exec, ProxyDefinition::PerNode),
            Proxy::U => y.proxy_upper(exec, ProxyDefinition::PerNode),
        }
        .expect("per-node proxies always exist");
        self.relation(pr.rel, &xh, &yh)
    }

    /// Ground-truth verdicts for all 32 relations of `ℛ` on one pair.
    pub fn eval_all(
        &self,
        exec: &Execution,
        x: &NonatomicEvent,
        y: &NonatomicEvent,
    ) -> RelationSet {
        let proxies = |ev: &NonatomicEvent| {
            (
                ev.proxy_lower(exec, ProxyDefinition::PerNode)
                    .expect("per-node proxies always exist"),
                ev.proxy_upper(exec, ProxyDefinition::PerNode)
                    .expect("per-node proxies always exist"),
            )
        };
        let (lx, ux) = proxies(x);
        let (ly, uy) = proxies(y);
        let mut set = RelationSet::empty();
        for pr in ProxyRelation::all() {
            let xh = match pr.x_proxy {
                Proxy::L => &lx,
                Proxy::U => &ux,
            };
            let yh = match pr.y_proxy {
                Proxy::L => &ly,
                Proxy::U => &uy,
            };
            if self.relation(pr.rel, xh, yh) {
                set.insert(pr);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionBuilder;
    use crate::linear::Evaluator;
    use crate::relations::naive;

    fn pool_exec() -> (Execution, Vec<EventId>) {
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let b = bld.internal(1);
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        (bld.build().unwrap(), vec![a, s1, r1, b, s2, r2])
    }

    fn subsets(pool: &[EventId]) -> Vec<(Vec<EventId>, Vec<EventId>)> {
        let mut out = Vec::new();
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let pick = |m: u32| -> Vec<EventId> {
                    pool.iter()
                        .enumerate()
                        .filter(|(k, _)| m & (1 << k) != 0)
                        .map(|(_, &v)| v)
                        .collect()
                };
                out.push((pick(xm), pick(ym)));
            }
        }
        out
    }

    #[test]
    fn matrix_matches_slow_search() {
        let (e, _) = pool_exec();
        assert_eq!(Oracle::new(&e).verify_against_slow(&e), Ok(()));
    }

    #[test]
    fn relation_matches_naive_exhaustive() {
        let (e, pool) = pool_exec();
        let oracle = Oracle::new(&e);
        for (xs, ys) in subsets(&pool) {
            let x = NonatomicEvent::new(&e, xs).unwrap();
            let y = NonatomicEvent::new(&e, ys).unwrap();
            for rel in Relation::ALL {
                assert_eq!(
                    oracle.relation(rel, &x, &y),
                    naive(&e, rel, &x, &y),
                    "{rel}"
                );
            }
        }
    }

    #[test]
    fn eval_all_matches_linear_machinery() {
        let (e, pool) = pool_exec();
        let oracle = Oracle::new(&e);
        let ev = Evaluator::new(&e);
        for (xs, ys) in subsets(&pool) {
            let x = NonatomicEvent::new(&e, xs).unwrap();
            let y = NonatomicEvent::new(&e, ys).unwrap();
            let sx = ev.summarize_proxies(&x);
            let sy = ev.summarize_proxies(&y);
            let (linear, _) = ev.eval_all_proxy(&sx, &sy);
            let (fused, _) = ev.eval_all_proxy_fused(&sx, &sy);
            let truth = oracle.eval_all(&e, &x, &y);
            assert_eq!(truth, linear);
            assert_eq!(truth, fused);
        }
    }

    #[test]
    fn empty_execution_oracle() {
        let e = ExecutionBuilder::new(2).build().unwrap();
        let oracle = Oracle::new(&e);
        assert!(oracle.is_empty());
        assert_eq!(oracle.verify_against_slow(&e), Ok(()));
    }
}
