//! Error type shared across the crate.

use std::fmt;

use crate::execution::{EventId, ProcessId};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing executions, cuts, or nonatomic events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A process id referenced a process outside the execution.
    UnknownProcess(ProcessId),
    /// An event id referenced an event outside the execution.
    UnknownEvent(EventId),
    /// A message token was consumed twice or never produced.
    BadMessageToken(u64),
    /// The local orders plus message edges contain a causal cycle.
    CausalCycle,
    /// An index into a detector's event list was out of range.
    UnknownEventIndex(usize),
    /// A nonatomic event must contain at least one application event.
    EmptyNonatomicEvent,
    /// Nonatomic events may not contain the dummy `⊥ᵢ` / `⊤ᵢ` events.
    DummyInNonatomicEvent(EventId),
    /// A cut must contain `⊥ᵢ` for every process and be per-process
    /// downward-closed (Definition 5).
    NotACut,
    /// A Definition-3 proxy is empty (no global minimum/maximum exists).
    EmptyProxy,
    /// The operation requires executions of identical shape.
    ExecutionMismatch,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownProcess(p) => write!(f, "unknown process {p}"),
            Error::UnknownEvent(e) => write!(f, "unknown event {e}"),
            Error::UnknownEventIndex(i) => write!(f, "unknown nonatomic event index {i}"),
            Error::BadMessageToken(t) => write!(f, "bad message token {t}"),
            Error::CausalCycle => write!(f, "message edges induce a causal cycle"),
            Error::EmptyNonatomicEvent => {
                write!(f, "a nonatomic event must contain at least one event")
            }
            Error::DummyInNonatomicEvent(e) => {
                write!(f, "nonatomic event contains dummy event {e}")
            }
            Error::NotACut => write!(f, "event set is not a cut (Definition 5)"),
            Error::EmptyProxy => write!(f, "Definition-3 proxy is empty"),
            Error::ExecutionMismatch => write!(f, "executions have different shapes"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::EventId;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::UnknownProcess(ProcessId(3)), "P3"),
            (Error::UnknownEvent(EventId::new(1, 2)), "p1:2"),
            (Error::UnknownEventIndex(9), "index 9"),
            (Error::BadMessageToken(7), "token 7"),
            (Error::CausalCycle, "cycle"),
            (Error::EmptyNonatomicEvent, "at least one"),
            (
                Error::DummyInNonatomicEvent(EventId::new(0, 0)),
                "dummy event p0:0",
            ),
            (Error::NotACut, "Definition 5"),
            (Error::EmptyProxy, "proxy"),
            (Error::ExecutionMismatch, "different shapes"),
        ];
        for (e, needle) in cases {
            let text = e.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
            // std::error::Error is implemented.
            let _: &dyn std::error::Error = &e;
        }
    }
}
