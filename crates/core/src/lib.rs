//! # synchrel-core
//!
//! A library for evaluating fine-grained causality / synchronization
//! relations between **nonatomic poset events** in distributed executions,
//! reproducing
//!
//! > A. D. Kshemkalyani, *"Testing of Synchronization Conditions for
//! > Distributed Real-Time Applications"*, IPPS/SPDP 1998.
//!
//! A distributed execution is a poset `(E, ≺)` of atomic events partitioned
//! into per-process chains, with causality induced by local order and
//! message exchange ([`Execution`]). High-level application actions are
//! **nonatomic events**: sets of atomic events possibly spanning several
//! processes ([`NonatomicEvent`]).
//!
//! Between two nonatomic events `X` and `Y` the paper considers the eight
//! quantifier relations of Table 1 — `R1 = ∀x∀y: x ≺ y`,
//! `R2 = ∀x∃y: x ≺ y`, `R3 = ∃x∀y: x ≺ y`, `R4 = ∃x∃y: x ≺ y` and their
//! order-swapped primed variants — lifted to 32 relations `ℛ` by replacing
//! `X`/`Y` with their begin/end *proxies* `L_X`/`U_X` ([`Proxy`]).
//!
//! The headline result (Theorems 19 and 20) is that every relation can be
//! decided in a **linear** number of integer comparisons —
//! `min(|N_X|, |N_Y|)` for R1, R1', R2', R3, R4, R4'; `|N_X|` for R2;
//! `|N_Y|` for R3' — instead of the naive `|N_X| × |N_Y|`, by re-expressing
//! each relation through the `≪` relation between *cuts* (execution
//! prefixes) condensing the causal past/future of each nonatomic event.
//!
//! This crate implements all of the machinery:
//!
//! * [`execution`] — the poset event-structure model `(E, ≺)`, with dummy
//!   initial (`⊥ᵢ`) and final (`⊤ᵢ`) events per process (paper §1);
//! * [`vclock`] — vector clocks and the component-wise partial order;
//! * [`timestamp`] — forward timestamps `T(e)` (Definition 13) and reverse
//!   timestamps `Tᴿ(e)` (Definition 14), and the isomorphism
//!   `(E,≺) ≅ (𝒯,<)`;
//! * [`cut`] — cuts (Definition 5), surfaces `S(C)` (Definition 6), the cut
//!   lattice, and the `≪` relation in all four forms of Definition 7;
//! * [`nonatomic`] — nonatomic events, node sets (Definition 1), and
//!   proxies under Definition 2 and Definition 3;
//! * [`pastfuture`] — the per-event cuts `↓e` / `e⇑` (Definitions 8–9) and
//!   the condensation cuts `C1(X)=∩⇓X`, `C2(X)=∪⇓X`, `C3(X)=∩⇑X`,
//!   `C4(X)=∪⇑X` of Definition 10 / Table 2, built both extensionally and
//!   through timestamps (Lemma 16, Corollary 17);
//! * [`relations`] — the eight Table-1 relations with naive (ground-truth)
//!   and proxy-baseline evaluation;
//! * [`linear`] — the paper's linear-time evaluation conditions with exact
//!   comparison counting (Theorems 19–20);
//! * [`proxy_relations`] — the full 32-relation family `ℛ`;
//! * [`hierarchy`] — the implication hierarchy between the relations;
//! * [`detector`] — Problem 4: detecting one/all relations over a set `𝒜`
//!   of nonatomic events with cached cut timestamps (Key Idea 1);
//! * [`incremental`] — stateful O(delta) Problem-4 maintenance under an
//!   event stream, with settle rules and implication-lattice pruning;
//! * [`tile`] — the tile-parallel scheduler (static row bands plus a
//!   steal-only tail) shared by every parallel sweep;
//! * [`oracle`] — a brute-force causality-matrix oracle for differential
//!   conformance testing of every optimized path;
//! * [`diagram`] — ASCII space-time diagrams for executions and cuts
//!   (used to regenerate Figures 1–3).
//!
//! ## Quickstart
//!
//! ```
//! use synchrel_core::prelude::*;
//!
//! // Two processes; P0 sends a message to P1.
//! let mut b = ExecutionBuilder::new(2);
//! let x0 = b.internal(0);
//! let (s, m) = b.send(0);
//! let r = b.recv(1, m).unwrap();
//! let y1 = b.internal(1);
//! let exec = b.build().unwrap();
//!
//! let x = NonatomicEvent::new(&exec, [x0, s]).unwrap();
//! let y = NonatomicEvent::new(&exec, [r, y1]).unwrap();
//!
//! let eval = Evaluator::new(&exec);
//! // Every event of X causally precedes every event of Y:
//! assert!(eval.holds(Relation::R1, &x, &y));
//! ```

pub mod codec;
pub mod cut;
pub mod detector;
pub mod diagram;
pub mod error;
pub mod execution;
pub mod hierarchy;
pub mod incremental;
pub mod linear;
pub mod nonatomic;
pub mod oracle;
pub mod pastfuture;
pub mod proxy_relations;
pub mod relations;
pub mod thm19;
pub mod tile;
pub mod timestamp;
pub mod vclock;

/// The observability crate, re-exported so downstream users get the
/// exact `Meter` types the evaluator generics are instantiated with.
pub use synchrel_obs as obs;
pub use synchrel_obs::{CompareCounter, Meter, MeterSnapshot, NoopMeter};

pub use codec::{CodecError, Reader, Writer};
pub use cut::{ll, not_ll, Cut, EventSet, LlForm};
pub use detector::{Detector, EvalMode, PairReport};
pub use diagram::Diagram;
pub use error::{Error, Result};
pub use execution::{Event, EventId, EventKind, Execution, ExecutionBuilder, MsgToken, ProcessId};
pub use hierarchy::{compose, implies, strongest};
pub use incremental::IncrementalDetector;
pub use linear::{sound_bound, theorem20_bound, ComparisonCount, Evaluator, EventSummary, ScanSet};
pub use nonatomic::{NonatomicEvent, ProxyDefinition};
pub use oracle::Oracle;
pub use pastfuture::{causal_past, ccf, condensation, condense_into, CondensationKind};
pub use proxy_relations::{naive_proxy, Proxy, ProxyRelation, ProxySummary, RelationSet};
pub use relations::{naive as naive_relation, proxy_baseline, Relation};
pub use thm19::{eval_now, CutSummary, Extreme};
pub use tile::{RowSlabs, TilePartition, DEFAULT_TILE};
pub use timestamp::{SummaryArena, Timestamps};
pub use vclock::{ClockView, VectorClock};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use synchrel_obs::{CompareCounter, Meter, MeterSnapshot, NoopMeter};

    pub use crate::cut::{ll, not_ll, Cut, EventSet, LlForm};
    pub use crate::detector::{Detector, EvalMode, PairReport};
    pub use crate::diagram::Diagram;
    pub use crate::error::{Error, Result};
    pub use crate::execution::{
        Event, EventId, EventKind, Execution, ExecutionBuilder, MsgToken, ProcessId,
    };
    pub use crate::hierarchy::{compose, implies, strongest};
    pub use crate::incremental::IncrementalDetector;
    pub use crate::linear::{
        sound_bound, theorem20_bound, ComparisonCount, Evaluator, EventSummary, ScanSet,
    };
    pub use crate::nonatomic::{NonatomicEvent, ProxyDefinition};
    pub use crate::oracle::Oracle;
    pub use crate::pastfuture::{causal_past, ccf, condensation, condense_into, CondensationKind};
    pub use crate::proxy_relations::{
        naive_proxy, Proxy, ProxyRelation, ProxySummary, RelationSet,
    };
    pub use crate::relations::{naive as naive_relation, proxy_baseline, Relation};
    pub use crate::tile::{RowSlabs, TilePartition, DEFAULT_TILE};
    pub use crate::timestamp::{SummaryArena, Timestamps};
    pub use crate::vclock::{ClockView, VectorClock};
}
