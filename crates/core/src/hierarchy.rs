//! The implication hierarchy among the Table-1 relations.
//!
//! For non-empty `X` and `Y` the eight relations form a lattice-shaped
//! hierarchy (the one the paper's relations "fill in" between the
//! hierarchies of Lamport and of Kshemkalyani's earlier work):
//!
//! ```text
//!            R1 ≡ R1'
//!           /        \
//!         R2'         R3
//!          |           |
//!         R2          R3'
//!           \        /
//!            R4 ≡ R4'
//! ```
//!
//! Every edge is a strict implication (`R2' ⟹ R2` because an `∃y∀x`
//! witness serves every `x`; `R3 ⟹ R3'` dually; `R1` implies everything
//! because both universals specialize; everything implies `R4` by
//! instantiating existentials — using non-emptiness of `X` and `Y`).

use crate::relations::Relation;

fn idx(r: Relation) -> usize {
    Relation::ALL.iter().position(|&x| x == r).expect("in ALL")
}

/// `IMPLIES[a][b]` ⟺ `a(X,Y) ⟹ b(X,Y)` for all non-empty `X`, `Y`.
/// Rows/columns in `Relation::ALL` order: R1 R1' R2 R2' R3 R3' R4 R4'.
const IMPLIES: [[bool; 8]; 8] = {
    let t = true;
    let f = false;
    [
        // R1 implies everything.
        [t, t, t, t, t, t, t, t],
        // R1' ≡ R1.
        [t, t, t, t, t, t, t, t],
        // R2 ⟹ R4.
        [f, f, t, f, f, f, t, t],
        // R2' ⟹ R2 ⟹ R4.
        [f, f, t, t, f, f, t, t],
        // R3 ⟹ R3' ⟹ R4.
        [f, f, f, f, t, t, t, t],
        // R3' ⟹ R4.
        [f, f, f, f, f, t, t, t],
        // R4 ≡ R4'.
        [f, f, f, f, f, f, t, t],
        [f, f, f, f, f, f, t, t],
    ]
};

/// Does `a(X, Y)` imply `b(X, Y)` for every pair of non-empty nonatomic
/// events?
pub fn implies(a: Relation, b: Relation) -> bool {
    IMPLIES[idx(a)][idx(b)]
}

/// All relations implied by `a` (including `a` itself).
pub fn implied_by(a: Relation) -> impl Iterator<Item = Relation> {
    Relation::ALL.into_iter().filter(move |&b| implies(a, b))
}

/// The strongest relations of a set: members not implied by any other
/// member (useful for reporting a pair's relation profile compactly).
pub fn strongest(set: &[Relation]) -> Vec<Relation> {
    set.iter()
        .copied()
        .filter(|&a| {
            !set.iter()
                .any(|&b| b != a && implies(b, a) && !implies(a, b))
        })
        .collect()
}

/// Composition calculus: the strongest relation guaranteed between
/// `(X, Z)` given `a(X, Y)` and `b(Y, Z)`, or `None` when nothing at
/// all follows (the paper's companion axiom system — its ref.\[13\] —
/// studies exactly such derivation rules).
///
/// The table below is derived by chaining quantifier witnesses through
/// the shared non-empty `Y`; every entry is sound (property-tested
/// against the naive semantics) and entries are `None` precisely when
/// the two quantifier patterns bind *different* members of `Y` with no
/// event relating them. Twins (R1', R4') behave as their partners.
///
/// | a \ b | R1 | R2 | R2' | R3 | R3' | R4 |
/// |-------|----|----|-----|----|-----|----|
/// | R1    | R1 | R2'| R2' | R1 | R1  | R2'|
/// | R2    | R1 | R2 | R2' | —  | —   | —  |
/// | R2'   | R1 | R2'| R2' | —  | —   | —  |
/// | R3    | R3 | R4 | R4  | R3 | R3  | R4 |
/// | R3'   | R3 | R4 | R4  | R3 | R3' | R4 |
/// | R4    | R3 | R4 | R4  | —  | —   | —  |
pub fn compose(a: Relation, b: Relation) -> Option<Relation> {
    use Relation as R;
    // Map the predicate twins onto their canonical partner.
    let canon = |r: Relation| match r {
        R::R1p => R::R1,
        R::R4p => R::R4,
        other => other,
    };
    let (a, b) = (canon(a), canon(b));
    Some(match (a, b) {
        (R::R1, R::R1) => R::R1,
        (R::R1, R::R2) | (R::R1, R::R2p) | (R::R1, R::R4) => R::R2p,
        (R::R1, R::R3) | (R::R1, R::R3p) => R::R1,
        (R::R2, R::R1) => R::R1,
        (R::R2, R::R2) => R::R2,
        (R::R2, R::R2p) => R::R2p,
        (R::R2p, R::R1) => R::R1,
        (R::R2p, R::R2) | (R::R2p, R::R2p) => R::R2p,
        (R::R3, R::R1) | (R::R3, R::R3) | (R::R3, R::R3p) => R::R3,
        (R::R3, R::R2) | (R::R3, R::R2p) | (R::R3, R::R4) => R::R4,
        (R::R3p, R::R1) | (R::R3p, R::R3) => R::R3,
        (R::R3p, R::R3p) => R::R3p,
        (R::R3p, R::R2) | (R::R3p, R::R2p) | (R::R3p, R::R4) => R::R4,
        (R::R4, R::R1) => R::R3,
        (R::R4, R::R2) | (R::R4, R::R2p) => R::R4,
        // The quantifier patterns bind different members of Y:
        (R::R2, R::R3) | (R::R2, R::R3p) | (R::R2, R::R4) => return None,
        (R::R2p, R::R3) | (R::R2p, R::R3p) | (R::R2p, R::R4) => return None,
        (R::R4, R::R3) | (R::R4, R::R3p) | (R::R4, R::R4) => return None,
        // All twin cases were canonicalized away.
        _ => unreachable!("twins canonicalized"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{EventId, ExecutionBuilder};
    use crate::nonatomic::NonatomicEvent;
    use crate::relations::naive;

    #[test]
    fn reflexive() {
        for r in Relation::ALL {
            assert!(implies(r, r));
        }
    }

    #[test]
    fn transitive() {
        for a in Relation::ALL {
            for b in Relation::ALL {
                for c in Relation::ALL {
                    if implies(a, b) && implies(b, c) {
                        assert!(implies(a, c), "{a} ⟹ {b} ⟹ {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn twins_are_equivalent() {
        assert!(implies(Relation::R1, Relation::R1p));
        assert!(implies(Relation::R1p, Relation::R1));
        assert!(implies(Relation::R4, Relation::R4p));
        assert!(implies(Relation::R4p, Relation::R4));
    }

    #[test]
    fn known_non_implications() {
        assert!(!implies(Relation::R2, Relation::R2p));
        assert!(!implies(Relation::R3p, Relation::R3));
        assert!(!implies(Relation::R2, Relation::R3p));
        assert!(!implies(Relation::R3, Relation::R2));
        assert!(!implies(Relation::R4, Relation::R1));
    }

    #[test]
    fn table_sound_on_exhaustive_pool() {
        // No claimed implication may be violated by any concrete pair.
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let c = bld.internal(2);
        let e = bld.build().unwrap();
        let pool = [a, s1, r1, s2, r2, c];
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                for ra in Relation::ALL {
                    if !naive(&e, ra, &x, &y) {
                        continue;
                    }
                    for rb in Relation::ALL {
                        if implies(ra, rb) {
                            assert!(
                                naive(&e, rb, &x, &y),
                                "{ra} holds but {rb} does not (X={xm:b}, Y={ym:b})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compose_twins_canonicalized() {
        assert_eq!(
            compose(Relation::R1p, Relation::R4p),
            compose(Relation::R1, Relation::R4)
        );
        assert_eq!(
            compose(Relation::R4p, Relation::R1p),
            compose(Relation::R4, Relation::R1)
        );
    }

    #[test]
    fn compose_sound_on_exhaustive_pool() {
        // Whenever a(X,Y) and b(Y,Z) hold, compose(a,b) must hold on
        // (X,Z) — exhaustively over small disjoint triples.
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        let c = bld.internal(2);
        let e = bld.build().unwrap();
        let pool = [a, s1, r1, s2, r2, c];
        let subsets: Vec<(u32, NonatomicEvent)> = (1u32..1 << pool.len())
            .map(|m| {
                let evs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| m & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                (m, NonatomicEvent::new(&e, evs).unwrap())
            })
            .collect();
        for (xm, x) in subsets.iter().take(20) {
            for (ym, y) in subsets.iter().take(20) {
                if xm & ym != 0 {
                    continue;
                }
                for (zm, z) in subsets.iter().take(20) {
                    if zm & ym != 0 || zm & xm != 0 {
                        continue;
                    }
                    for ra in Relation::ALL {
                        if !naive(&e, ra, x, y) {
                            continue;
                        }
                        for rb in Relation::ALL {
                            if !naive(&e, rb, y, z) {
                                continue;
                            }
                            if let Some(rc) = compose(ra, rb) {
                                assert!(
                                    naive(&e, rc, x, z),
                                    "{ra}∘{rb}⟹{rc} fails on X={xm:b} Y={ym:b} Z={zm:b}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compose_none_entries_are_necessary() {
        // Witness triple where R2(X,Y) ∧ R3(Y,Z) hold but nothing at all
        // holds between X and Z (not even R4): x ≺ y₂ only; y₁ ≺ z only.
        let mut bld = ExecutionBuilder::new(4);
        let (y1, m1) = bld.send(1); // y₁ ≺ z
        let (x, m0) = bld.send(0); // x ≺ y₂
        let y2 = bld.recv(2, m0).unwrap();
        let z = bld.recv(3, m1).unwrap();
        let e = bld.build().unwrap();
        let xx = NonatomicEvent::new(&e, [x]).unwrap();
        let yy = NonatomicEvent::new(&e, [y1, y2]).unwrap();
        let zz = NonatomicEvent::new(&e, [z]).unwrap();
        assert!(naive(&e, Relation::R2, &xx, &yy));
        assert!(naive(&e, Relation::R3, &yy, &zz));
        for rc in Relation::ALL {
            assert!(
                !naive(&e, rc, &xx, &zz),
                "{rc} should not hold between X and Z"
            );
        }
        assert_eq!(compose(Relation::R2, Relation::R3), None);
    }

    #[test]
    fn compose_spot_values() {
        assert_eq!(compose(Relation::R1, Relation::R1), Some(Relation::R1));
        assert_eq!(compose(Relation::R1, Relation::R4), Some(Relation::R2p));
        assert_eq!(compose(Relation::R4, Relation::R1), Some(Relation::R3));
        assert_eq!(compose(Relation::R3, Relation::R3p), Some(Relation::R3));
        assert_eq!(compose(Relation::R3p, Relation::R3p), Some(Relation::R3p));
        assert_eq!(compose(Relation::R4, Relation::R4), None);
    }

    #[test]
    fn strongest_filters_dominated() {
        let set = [Relation::R2, Relation::R4, Relation::R3p];
        let s = strongest(&set);
        assert!(s.contains(&Relation::R2));
        assert!(s.contains(&Relation::R3p));
        assert!(!s.contains(&Relation::R4));
    }
}
