//! Problem 4: relation detection over a set `𝒜` of nonatomic events.
//!
//! Given a recorded trace `(E, ≺)` and nonatomic events `𝒜`, the
//! application needs to know (i) whether a specific `r(X, Y)` holds for
//! `r ∈ ℛ`, and (ii) all relations that hold between each pair.
//!
//! The [`Detector`] owns the event set and implements Key Idea 1: each
//! event's proxy summaries (node sets, extremal positions, condensation
//! cuts) are computed **once** and cached; every subsequent query against
//! any other event is answered in a linear number of integer comparisons
//! (Theorem 20). Construct with [`Detector::without_cache`] to measure
//! the ablation.

use std::sync::Arc;

use parking_lot::RwLock;
use synchrel_obs::{Meter, NoopMeter};

use crate::error::{Error, Result};
use crate::execution::Execution;
use crate::incremental::IncrementalDetector;
use crate::linear::Evaluator;
use crate::nonatomic::NonatomicEvent;
use crate::proxy_relations::{ProxyRelation, ProxySummary, RelationSet};
use crate::tile::{RowSlabs, TilePartition, DEFAULT_TILE};
use crate::timestamp::SummaryArena;

/// How a [`Detector`] evaluates the 32 relations of a pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// 32 independent evaluations, each spending exactly its Theorem-20
    /// comparison budget — the reference path whose counts reproduce the
    /// paper's complexity table.
    #[default]
    Counted,
    /// The fused kernel ([`Evaluator::eval_all_proxy_fused`]): identical
    /// verdicts, shared predicate scans, fewer comparisons — the
    /// production hot path.
    Fused,
    /// The batched SoA row-sweep kernel
    /// ([`SummaryArena::eval_row_batch`]): one [`SummaryArena`] is built
    /// per detector, then each X row is evaluated against contiguous
    /// slabs of Y columns branch-free. Byte-identical `PairReport`s to
    /// [`EvalMode::Fused`] (same verdicts, same comparison counts —
    /// batching amortizes orchestration, not Theorem-20 comparisons),
    /// with a far lower per-pair constant on all-pairs scans.
    Batched,
    /// The stateful streaming engine
    /// ([`crate::incremental::IncrementalDetector`]): the execution's
    /// linearization is replayed once through per-pair settle state
    /// with implication-lattice pruning, touching only the pairs each
    /// event can still move. Verdicts are byte-identical to every other
    /// mode; `comparisons` reports what the incremental replay actually
    /// spent on the pair (typically far below the batch kernels on
    /// churn-heavy streams). The replay is canonical — presentation
    /// order never affects it — so reports and meter totals are
    /// deterministic. Self-pairs (`x == y`) fall back to the fused
    /// kernel.
    Incremental,
}

/// The relations holding between one ordered pair of nonatomic events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairReport {
    /// Index of `X` in the detector's event list.
    pub x: usize,
    /// Index of `Y` in the detector's event list.
    pub y: usize,
    /// The subset of `ℛ` that holds for `(X, Y)`.
    pub relations: RelationSet,
    /// Integer comparisons spent answering this pair (excluding the
    /// amortized one-time summary cost).
    pub comparisons: u64,
}

/// Relation detector over a fixed execution and event set (Problem 4).
pub struct Detector<'a> {
    eval: Evaluator<'a>,
    events: Vec<NonatomicEvent>,
    cache: RwLock<Vec<Option<Arc<ProxySummary>>>>,
    arena: RwLock<Option<Arc<SummaryArena>>>,
    incr: RwLock<Option<Arc<IncrSweep>>>,
    caching: bool,
    mode: EvalMode,
    tile: usize,
}

impl<'a> Detector<'a> {
    /// Create a detector with summary caching enabled (Key Idea 1).
    pub fn new(exec: &'a Execution, events: Vec<NonatomicEvent>) -> Self {
        let n = events.len();
        Detector {
            eval: Evaluator::new(exec),
            events,
            cache: RwLock::new(vec![None; n]),
            arena: RwLock::new(None),
            incr: RwLock::new(None),
            caching: true,
            mode: EvalMode::Counted,
            tile: DEFAULT_TILE,
        }
    }

    /// Create a detector that recomputes summaries on every query
    /// (the Key-Idea-1 ablation baseline).
    pub fn without_cache(exec: &'a Execution, events: Vec<NonatomicEvent>) -> Self {
        let mut d = Detector::new(exec, events);
        d.caching = false;
        d
    }

    /// Select the pair evaluation mode (builder style).
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active pair evaluation mode.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Select the tile width used by cache-blocked and parallel sweeps
    /// (builder style). The default, [`DEFAULT_TILE`], keeps one tile
    /// of Y-side summary planes L1/L2-resident; values are clamped to
    /// `≥ 1`. Any width produces byte-identical reports — this is a
    /// pure scheduling knob.
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = tile.max(1);
        self
    }

    /// The active tile width.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of registered nonatomic events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the event set empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The registered events.
    pub fn events(&self) -> &[NonatomicEvent] {
        &self.events
    }

    /// The event at `i`.
    pub fn event(&self, i: usize) -> Option<&NonatomicEvent> {
        self.events.get(i)
    }

    fn summary(&self, i: usize) -> Arc<ProxySummary> {
        if self.caching {
            if let Some(s) = &self.cache.read()[i] {
                return Arc::clone(s);
            }
        }
        let s = Arc::new(self.eval.summarize_proxies(&self.events[i]));
        if self.caching {
            let mut w = self.cache.write();
            if let Some(existing) = &w[i] {
                return Arc::clone(existing);
            }
            w[i] = Some(Arc::clone(&s));
        }
        s
    }

    /// The shared SoA arena of all events' proxy summaries, built once
    /// on first use (and warming the per-event summary cache as a side
    /// effect). All batched evaluations read from this single structure
    /// instead of fetching two `ProxySummary`s per pair.
    fn arena(&self) -> Arc<SummaryArena> {
        if let Some(a) = &*self.arena.read() {
            return Arc::clone(a);
        }
        let summaries: Vec<Arc<ProxySummary>> =
            (0..self.events.len()).map(|i| self.summary(i)).collect();
        let built = Arc::new(SummaryArena::build(
            self.eval.execution().num_processes(),
            summaries.iter().map(|s| s.as_ref()),
        ));
        let mut w = self.arena.write();
        if let Some(existing) = &*w {
            return Arc::clone(existing);
        }
        *w = Some(Arc::clone(&built));
        built
    }

    /// The cached incremental sweep: the execution linearization is
    /// replayed once through the streaming engine, in canonical
    /// (construction) order, and every ordered pair's final verdict and
    /// charged comparisons are kept for lookup. Replaying in canonical
    /// order makes reports and meter totals independent of how callers
    /// later iterate the pairs or distribute them over threads.
    fn incremental(&self) -> Arc<IncrSweep> {
        if let Some(s) = &*self.incr.read() {
            return Arc::clone(s);
        }
        let built = Arc::new(IncrSweep::build(self.eval.execution(), &self.events));
        let mut w = self.incr.write();
        if let Some(existing) = &*w {
            return Arc::clone(existing);
        }
        *w = Some(Arc::clone(&built));
        built
    }

    /// Force all summaries to be computed now (the "one-time cost" of
    /// §2.3, measured by the setup benchmark). In [`EvalMode::Batched`]
    /// this also packs the [`SummaryArena`]; in
    /// [`EvalMode::Incremental`] it runs the replay.
    pub fn warm_up(&self) {
        for i in 0..self.events.len() {
            let _ = self.summary(i);
        }
        if self.mode == EvalMode::Batched {
            let _ = self.arena();
        }
        if self.mode == EvalMode::Incremental {
            let _ = self.incremental();
        }
    }

    /// Problem 4(i): does the specific relation `pr` hold for the pair
    /// `(events[xi], events[yi])`?
    pub fn holds(&self, pr: ProxyRelation, xi: usize, yi: usize) -> Result<bool> {
        self.check_index(xi)?;
        self.check_index(yi)?;
        let sx = self.summary(xi);
        let sy = self.summary(yi);
        Ok(self.eval.eval_proxy(pr, &sx, &sy).holds)
    }

    /// Problem 4(ii) for one pair: all relations of `ℛ` that hold.
    pub fn pair(&self, xi: usize, yi: usize) -> Result<PairReport> {
        self.pair_with(xi, yi, &NoopMeter)
    }

    /// [`Detector::pair`] reporting comparison counts to a [`Meter`].
    ///
    /// In [`EvalMode::Counted`] every one of the 32 relation
    /// evaluations is reported with its Theorem-20 budgets; in
    /// [`EvalMode::Fused`] and [`EvalMode::Batched`] only the pair
    /// total is (those kernels share predicate scans across relations).
    #[inline]
    pub fn pair_with<M: Meter>(&self, xi: usize, yi: usize, meter: &M) -> Result<PairReport> {
        self.check_index(xi)?;
        self.check_index(yi)?;
        let (relations, comparisons) = match self.mode {
            EvalMode::Counted => {
                let sx = self.summary(xi);
                let sy = self.summary(yi);
                self.eval.eval_all_proxy_with(&sx, &sy, meter)
            }
            EvalMode::Fused => {
                let sx = self.summary(xi);
                let sy = self.summary(yi);
                self.eval.eval_all_proxy_fused_with(&sx, &sy, meter)
            }
            EvalMode::Batched => {
                let a = self.arena();
                let mut slab = [RelationSet::empty()];
                a.eval_row_batch(xi, yi, &mut slab);
                let comparisons = a.pair_comparisons(xi, yi);
                if meter.enabled() {
                    meter.on_pair(comparisons);
                }
                (slab[0], comparisons)
            }
            EvalMode::Incremental if xi != yi => {
                let s = self.incremental();
                let (relations, comparisons) = s.get(xi, yi);
                if meter.enabled() {
                    meter.on_pair(comparisons);
                }
                (relations, comparisons)
            }
            EvalMode::Incremental => {
                // Self-pair: the streaming engine tracks X ≠ Y only.
                let sx = self.summary(xi);
                let sy = self.summary(yi);
                self.eval.eval_all_proxy_fused_with(&sx, &sy, meter)
            }
        };
        Ok(PairReport {
            x: xi,
            y: yi,
            relations,
            comparisons,
        })
    }

    /// Problem 4(ii): reports for every ordered pair `X ≠ Y`.
    pub fn all_pairs(&self) -> Vec<PairReport> {
        self.all_pairs_with(&NoopMeter)
    }

    /// [`Detector::all_pairs`] reporting to a [`Meter`].
    pub fn all_pairs_with<M: Meter>(&self, meter: &M) -> Vec<PairReport> {
        let n = self.events.len();
        if n < 2 {
            // Zero or one event: no ordered pairs, explicitly empty.
            return Vec::new();
        }
        if self.mode == EvalMode::Batched {
            // The same cache-blocked tile sweep the parallel engine
            // runs per band, over the whole row space.
            let a = self.arena();
            let mut out = empty_reports(n);
            {
                let slabs = RowSlabs::new(&mut out, n - 1);
                // SAFETY: single-threaded — this is the only writer.
                batched_sweep(&a, self.tile, 0..n, &slabs, meter);
            }
            return out;
        }
        let mut out = Vec::with_capacity((n - 1) * n);
        for x in 0..n {
            for y in 0..n {
                if x != y {
                    out.push(self.pair_with(x, y, meter).expect("indices in range"));
                }
            }
        }
        out
    }

    /// Parallel [`Detector::all_pairs`]: summaries are warmed up first,
    /// then the pair matrix is evaluated on `threads` worker threads.
    ///
    /// Work is distributed by a [`TilePartition`]: each worker owns a
    /// static contiguous band of X rows (no shared counter on the hot
    /// path, no false sharing on result writes — every row writes its
    /// own output slab), and a small stealable tail of rows rebalances
    /// skewed `|N_X|`/`|N_Y|` costs after the bands drain.
    pub fn all_pairs_parallel(&self, threads: usize) -> Vec<PairReport> {
        self.all_pairs_parallel_with(threads, &NoopMeter)
    }

    /// [`Detector::all_pairs_parallel`] reporting to a [`Meter`].
    ///
    /// Each worker thread gets its own [`Meter::fork`] (the counting
    /// meter is `Cell`-based and deliberately `!Sync`), and the forks
    /// are [`Meter::absorb`]ed into `meter` after the join. Because the
    /// merge is commutative and associative, the aggregated metrics are
    /// identical for every thread count and any steal-tail schedule
    /// — only the per-worker partition varies.
    pub fn all_pairs_parallel_with<M: Meter + Send>(
        &self,
        threads: usize,
        meter: &M,
    ) -> Vec<PairReport> {
        let n = self.events.len();
        if n < 2 {
            return Vec::new();
        }
        self.warm_up();
        if self.mode == EvalMode::Batched {
            return self.all_pairs_parallel_batched(threads, meter);
        }
        let part = TilePartition::new(n, threads, 1);
        if part.threads() == 1 {
            return self.all_pairs_with(meter);
        }
        let mut out = empty_reports(n);
        {
            let slabs = RowSlabs::new(&mut out, n - 1);
            let slabs = &slabs;
            let forks: Vec<M> = (0..part.threads()).map(|_| meter.fork()).collect();
            let forks = part.run(forks, |fork, rows| {
                for x in rows {
                    // SAFETY: the partition dispatches each row to
                    // exactly one worker; this worker owns row `x`.
                    let slab = unsafe { slabs.item_mut(x) };
                    let mut k = 0;
                    for y in 0..n {
                        if y == x {
                            continue;
                        }
                        slab[k] = self.pair_with(x, y, fork).expect("indices in range");
                        k += 1;
                    }
                }
            });
            for fork in &forks {
                meter.absorb(fork);
            }
        }
        out
    }

    /// Parallel batched scan: each worker's static band of X rows is
    /// swept through the shared cache-blocked tile kernel
    /// ([`batched_sweep`]), writing straight into its disjoint output
    /// slabs. Reports are byte-identical to the sequential scan for
    /// every thread count, tile width, and steal schedule.
    fn all_pairs_parallel_batched<M: Meter + Send>(
        &self,
        threads: usize,
        meter: &M,
    ) -> Vec<PairReport> {
        let n = self.events.len();
        let a = self.arena();
        let part = TilePartition::new(n, threads, self.tile);
        if part.threads() == 1 {
            return self.all_pairs_with(meter);
        }
        let mut out = empty_reports(n);
        {
            let slabs = RowSlabs::new(&mut out, n - 1);
            let slabs = &slabs;
            let (a, tile) = (a.as_ref(), self.tile);
            let forks: Vec<M> = (0..part.threads()).map(|_| meter.fork()).collect();
            let forks = part.run(forks, |fork, rows| {
                batched_sweep(a, tile, rows, slabs, fork);
            });
            for fork in &forks {
                meter.absorb(fork);
            }
        }
        out
    }

    fn check_index(&self, i: usize) -> Result<()> {
        if i >= self.events.len() {
            return Err(Error::UnknownEventIndex(i));
        }
        Ok(())
    }
}

/// The frozen result of one incremental replay: per ordered pair the
/// final verdict set and the comparisons the streaming engine charged
/// to it, in x-major diagonal-skipping order.
struct IncrSweep {
    n: usize,
    sets: Vec<RelationSet>,
    comps: Vec<u64>,
}

impl IncrSweep {
    fn build(exec: &Execution, events: &[NonatomicEvent]) -> IncrSweep {
        let n = events.len();
        let mut sets = Vec::with_capacity(n.saturating_sub(1) * n);
        let mut comps = Vec::with_capacity(sets.capacity());
        if n >= 2 {
            let det = IncrementalDetector::replay(exec, events);
            for x in 0..n {
                for y in 0..n {
                    if x != y {
                        sets.push(det.relations(x, y).expect("events are non-empty"));
                        comps.push(det.pair_comparisons(x, y));
                    }
                }
            }
        }
        IncrSweep { n, sets, comps }
    }

    fn get(&self, x: usize, y: usize) -> (RelationSet, u64) {
        let k = x * (self.n - 1) + y - usize::from(y > x);
        (self.sets[k], self.comps[k])
    }
}

/// A zeroed `n × (n-1)` report matrix for [`RowSlabs`] writers to fill.
fn empty_reports(n: usize) -> Vec<PairReport> {
    vec![
        PairReport {
            x: 0,
            y: 0,
            relations: RelationSet::empty(),
            comparisons: 0,
        };
        n * (n - 1)
    ]
}

/// The cache-blocked batched sweep over one range of X rows, shared by
/// the sequential scan (`rows = 0..n`, one caller) and every parallel
/// worker (its band, then stolen tail chunks).
///
/// The Y dimension is blocked in `tile`-column slices *outside* the X
/// loop: one tile of Y-side summary planes (`2 proxies × 3 segments ×
/// |P| × tile × 4 B` ≈ 24 KiB at `|P| = 16`, `tile = 64`) is streamed
/// against every X row of the range while it is still L1/L2-resident,
/// instead of each X row marching the full Y extent and evicting it.
/// Row `x`'s reports land in slab `x` at diagonal-skipping offsets, so
/// the output is x-major regardless of the block order — byte-identical
/// to the unblocked sweep.
fn batched_sweep<M: Meter>(
    a: &SummaryArena,
    tile: usize,
    rows: std::ops::Range<usize>,
    slabs: &RowSlabs<'_, PairReport>,
    meter: &M,
) {
    let n = slabs.items();
    let tile = tile.max(1).min(n);
    let mut sets = vec![RelationSet::empty(); tile];
    for y0 in (0..n).step_by(tile) {
        let yw = tile.min(n - y0);
        for x in rows.clone() {
            a.eval_row_batch(x, y0, &mut sets[..yw]);
            // SAFETY: callers only pass row ranges they were dispatched
            // exclusively (or run single-threaded), so slab `x` has no
            // other writer.
            let slab = unsafe { slabs.item_mut(x) };
            for (k, &relations) in sets[..yw].iter().enumerate() {
                let y = y0 + k;
                if y == x {
                    continue;
                }
                let comparisons = a.pair_comparisons(x, y);
                if meter.enabled() {
                    meter.on_pair(comparisons);
                }
                slab[y - usize::from(y > x)] = PairReport {
                    x,
                    y,
                    relations,
                    comparisons,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use synchrel_obs::CompareCounter;

    use super::*;
    use crate::execution::ExecutionBuilder;
    use crate::proxy_relations::Proxy;
    use crate::relations::Relation;

    fn setup() -> (Execution, Vec<NonatomicEvent>) {
        // Three phases chained by messages: X fully precedes Y, which
        // fully precedes Z.
        let mut b = ExecutionBuilder::new(3);
        let x1 = b.internal(0);
        let (x2, m1) = b.send(0);
        let y1 = b.recv(1, m1).unwrap();
        let (y2, m2) = b.send(1);
        let z1 = b.recv(2, m2).unwrap();
        let z2 = b.internal(2);
        let e = b.build().unwrap();
        let xs = vec![
            NonatomicEvent::new(&e, [x1, x2]).unwrap(),
            NonatomicEvent::new(&e, [y1, y2]).unwrap(),
            NonatomicEvent::new(&e, [z1, z2]).unwrap(),
        ];
        (e, xs)
    }

    #[test]
    fn specific_relation_query() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs);
        let r1 = ProxyRelation::new(Relation::R1, Proxy::U, Proxy::L);
        assert!(d.holds(r1, 0, 1).unwrap());
        assert!(d.holds(r1, 1, 2).unwrap());
        assert!(d.holds(r1, 0, 2).unwrap());
        assert!(!d.holds(r1, 2, 0).unwrap());
    }

    #[test]
    fn pair_reports_all_relations_for_ordered_phases() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs);
        let rep = d.pair(0, 1).unwrap();
        // X wholly precedes Y: every one of the 32 relations holds.
        assert_eq!(rep.relations.len(), 32);
        let rev = d.pair(1, 0).unwrap();
        assert!(rev.relations.is_empty());
    }

    #[test]
    fn all_pairs_covers_matrix() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs);
        let reports = d.all_pairs();
        assert_eq!(reports.len(), 6);
        for rep in &reports {
            if rep.x < rep.y {
                assert_eq!(rep.relations.len(), 32, "({}, {})", rep.x, rep.y);
            } else {
                assert!(rep.relations.is_empty(), "({}, {})", rep.x, rep.y);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs);
        let seq = d.all_pairs();
        for threads in [1, 2, 4, 16] {
            let par = d.all_pairs_parallel(threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn fused_mode_matches_counted_verdicts() {
        let (e, evs) = setup();
        let counted = Detector::new(&e, evs.clone());
        let fused = Detector::new(&e, evs).with_mode(EvalMode::Fused);
        assert_eq!(fused.mode(), EvalMode::Fused);
        let a = counted.all_pairs();
        let b = fused.all_pairs();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.relations, rb.relations, "({}, {})", ra.x, ra.y);
            assert!(rb.comparisons <= ra.comparisons, "({}, {})", ra.x, ra.y);
        }
    }

    #[test]
    fn parallel_fused_matches_sequential_fused() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs).with_mode(EvalMode::Fused);
        let seq = d.all_pairs();
        for threads in [2, 3, 8] {
            assert_eq!(seq, d.all_pairs_parallel(threads), "threads = {threads}");
        }
    }

    #[test]
    fn cache_ablation_same_answers() {
        let (e, evs) = setup();
        let cached = Detector::new(&e, evs.clone());
        let uncached = Detector::without_cache(&e, evs);
        assert_eq!(cached.all_pairs(), uncached.all_pairs());
    }

    #[test]
    fn metered_counts_match_reports() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs);
        let meter = CompareCounter::new();
        let reports = d.all_pairs_with(&meter);
        assert_eq!(meter.pairs(), reports.len() as u64);
        let total: u64 = reports.iter().map(|r| r.comparisons).sum();
        assert_eq!(meter.comparisons(), total);
        let snap = meter.snapshot(Relation::NAMES);
        assert_eq!(snap.pair_comparisons, total);
        for t in &snap.relations {
            assert_eq!(t.sound_violations, 0, "{}", t.name);
            assert_eq!(t.evals, 4 * reports.len() as u64, "{}", t.name);
        }
    }

    #[test]
    fn batched_mode_byte_identical_to_fused() {
        let (e, evs) = setup();
        let fused = Detector::new(&e, evs.clone()).with_mode(EvalMode::Fused);
        let batched = Detector::new(&e, evs).with_mode(EvalMode::Batched);
        assert_eq!(batched.mode(), EvalMode::Batched);
        // Whole reports — relations AND comparisons — must match.
        assert_eq!(fused.all_pairs(), batched.all_pairs());
        // Single-pair queries go through the same arena.
        assert_eq!(fused.pair(0, 2).unwrap(), batched.pair(0, 2).unwrap());
        assert_eq!(fused.pair(2, 1).unwrap(), batched.pair(2, 1).unwrap());
    }

    #[test]
    fn incremental_mode_matches_batched_verdicts() {
        let (e, evs) = setup();
        let batched = Detector::new(&e, evs.clone()).with_mode(EvalMode::Batched);
        let incr = Detector::new(&e, evs).with_mode(EvalMode::Incremental);
        assert_eq!(incr.mode(), EvalMode::Incremental);
        let a = batched.all_pairs();
        let b = incr.all_pairs();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            // Verdicts byte-identical; comparison accounting is the
            // engine's own (what the replay actually spent).
            assert_eq!(ra.relations, rb.relations, "({}, {})", ra.x, ra.y);
        }
        // Self-pair falls back to the fused kernel instead of erroring.
        assert_eq!(
            incr.pair(1, 1).unwrap().relations,
            batched.pair(1, 1).unwrap().relations
        );
    }

    #[test]
    fn parallel_incremental_matches_sequential_incremental() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs).with_mode(EvalMode::Incremental);
        let seq = d.all_pairs();
        for threads in [1, 2, 3, 8] {
            assert_eq!(seq, d.all_pairs_parallel(threads), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_batched_matches_sequential_batched() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs).with_mode(EvalMode::Batched);
        let seq = d.all_pairs();
        for threads in [1, 2, 3, 8, 16] {
            assert_eq!(seq, d.all_pairs_parallel(threads), "threads = {threads}");
        }
    }

    #[test]
    fn metering_does_not_change_reports() {
        let (e, evs) = setup();
        for mode in [
            EvalMode::Counted,
            EvalMode::Fused,
            EvalMode::Batched,
            EvalMode::Incremental,
        ] {
            let d = Detector::new(&e, evs.clone()).with_mode(mode);
            let plain = d.all_pairs();
            let meter = CompareCounter::new();
            assert_eq!(plain, d.all_pairs_with(&meter), "{mode:?}");
        }
    }

    #[test]
    fn parallel_meter_aggregate_is_thread_count_independent() {
        let (e, evs) = setup();
        for mode in [
            EvalMode::Counted,
            EvalMode::Fused,
            EvalMode::Batched,
            EvalMode::Incremental,
        ] {
            let d = Detector::new(&e, evs.clone()).with_mode(mode);
            let baseline = CompareCounter::new();
            let seq = d.all_pairs_with(&baseline);
            for threads in [1, 2, 4, 8] {
                let meter = CompareCounter::new();
                let par = d.all_pairs_parallel_with(threads, &meter);
                assert_eq!(seq, par, "{mode:?} threads={threads}");
                assert_eq!(
                    baseline.snapshot(Relation::NAMES),
                    meter.snapshot(Relation::NAMES),
                    "{mode:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn index_errors() {
        let (e, evs) = setup();
        let d = Detector::new(&e, evs);
        let r = ProxyRelation::new(Relation::R4, Proxy::L, Proxy::U);
        assert!(d.holds(r, 0, 7).is_err());
        assert!(d.pair(9, 0).is_err());
    }

    #[test]
    fn empty_and_singleton_sets() {
        let (e, _) = setup();
        let d = Detector::new(&e, vec![]);
        assert!(d.is_empty());
        assert!(d.all_pairs().is_empty());
        assert!(d.all_pairs_parallel(4).is_empty());
    }

    #[test]
    fn tiny_inputs_empty_reports_in_every_mode() {
        // Regression: 0- and 1-event executions must return an explicit
        // empty report (never panic on zero pairs) in every mode,
        // sequential and parallel, for any thread count.
        let (e, evs) = setup();
        for mode in [
            EvalMode::Counted,
            EvalMode::Fused,
            EvalMode::Batched,
            EvalMode::Incremental,
        ] {
            for events in [vec![], vec![evs[0].clone()]] {
                let d = Detector::new(&e, events.clone()).with_mode(mode);
                assert!(d.all_pairs().is_empty(), "{mode:?} n={}", events.len());
                for threads in [0, 1, 4, 64] {
                    assert!(
                        d.all_pairs_parallel(threads).is_empty(),
                        "{mode:?} n={} threads={threads}",
                        events.len()
                    );
                }
                let m = CompareCounter::new();
                assert!(d.all_pairs_with(&m).is_empty());
                assert_eq!(m.pairs(), 0, "{mode:?}: no pairs, no meter events");
            }
        }
    }
}
