//! Vector clocks: fixed-width integer vectors with the component-wise
//! partial order.
//!
//! A [`VectorClock`] of width `|P|` timestamps an atomic event per
//! Definition 13 of the paper: `T(e)[i]` is the number of events on node `i`
//! that causally precede or equal `e`. The set of all such timestamps,
//! ordered by the strict component-wise order `<`, is isomorphic to the
//! event poset `(E, ≺)` — see [`crate::timestamp`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

/// `a ≤ b` component-wise over raw timestamp rows.
#[inline]
pub(crate) fn row_le(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// A borrowed, `Copy` view of a timestamp row in the flat arena
/// (see [`crate::timestamp::Timestamps`]).
///
/// Supports the same comparison algebra as [`VectorClock`] without
/// owning its components: the row lives contiguously inside the arena,
/// so a comparison is a branch-light scan over adjacent memory.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ClockView<'a>(&'a [u32]);

impl<'a> ClockView<'a> {
    /// Wrap a raw timestamp row.
    #[inline]
    pub fn new(row: &'a [u32]) -> Self {
        ClockView(row)
    }

    /// Number of components (`|P|`).
    #[inline]
    pub fn width(self) -> usize {
        self.0.len()
    }

    /// Raw components, borrowing from the arena (not from `self`).
    #[inline]
    pub fn components(self) -> &'a [u32] {
        self.0
    }

    /// Copy into an owned [`VectorClock`].
    pub fn to_clock(self) -> VectorClock {
        VectorClock(self.0.to_vec())
    }

    /// `self ≤ other` component-wise.
    #[inline]
    pub fn le(self, other: ClockView<'_>) -> bool {
        row_le(self.0, other.0)
    }

    /// Strict vector order: `self ≤ other` and `self ≠ other`.
    ///
    /// Under the isomorphism of Definition 13 this is exactly the
    /// causality relation `≺` between the timestamped events.
    #[inline]
    pub fn lt(self, other: ClockView<'_>) -> bool {
        self.le(other) && self.0 != other.0
    }

    /// Neither `self ≤ other` nor `other ≤ self`: the timestamped events
    /// are concurrent (incomparable under `≺`).
    #[inline]
    pub fn concurrent(self, other: ClockView<'_>) -> bool {
        !self.le(other) && !other.le(self)
    }
}

impl Index<usize> for ClockView<'_> {
    type Output = u32;

    #[inline]
    fn index(&self, i: usize) -> &u32 {
        &self.0[i]
    }
}

impl PartialEq<VectorClock> for ClockView<'_> {
    fn eq(&self, other: &VectorClock) -> bool {
        self.0 == other.components()
    }
}

impl PartialEq<ClockView<'_>> for VectorClock {
    fn eq(&self, other: &ClockView<'_>) -> bool {
        self.components() == other.0
    }
}

impl PartialOrd for ClockView<'_> {
    /// The component-wise partial order. Returns `None` for concurrent
    /// (incomparable) clocks.
    fn partial_cmp(&self, other: &ClockView<'_>) -> Option<Ordering> {
        match (row_le(self.0, other.0), row_le(other.0, self.0)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Debug for ClockView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.0)
    }
}

impl fmt::Display for ClockView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, c) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A vector timestamp: one non-negative counter per process.
///
/// Component `i` counts events of process `i` (including the dummy `⊥ᵢ`)
/// in the causal past of the timestamped event.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock of the given width.
    pub fn zero(width: usize) -> Self {
        VectorClock(vec![0; width])
    }

    /// The all-ones clock of the given width (the floor contributed by the
    /// dummy initial events `⊥ᵢ ≺ e`).
    pub fn ones(width: usize) -> Self {
        VectorClock(vec![1; width])
    }

    /// A unit clock: 1 at `at`, 0 elsewhere. This is `T(⊥_at)`.
    pub fn unit(width: usize, at: usize) -> Self {
        let mut v = vec![0; width];
        v[at] = 1;
        VectorClock(v)
    }

    /// Construct from raw components.
    pub fn from_components(components: Vec<u32>) -> Self {
        VectorClock(components)
    }

    /// Number of components (`|P|`).
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Raw components.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Mutable raw components.
    pub fn components_mut(&mut self) -> &mut [u32] {
        &mut self.0
    }

    /// Component-wise maximum, in place. This is the `merge` of message
    /// passing vector-clock algorithms, and computes timestamps of cut
    /// unions (Lemma 16).
    pub fn join_assign(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Component-wise minimum, in place. Computes timestamps of cut
    /// intersections (Lemma 16).
    pub fn meet_assign(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).min(*b);
        }
    }

    /// Component-wise maximum.
    pub fn join(&self, other: &VectorClock) -> VectorClock {
        let mut v = self.clone();
        v.join_assign(other);
        v
    }

    /// Component-wise minimum.
    pub fn meet(&self, other: &VectorClock) -> VectorClock {
        let mut v = self.clone();
        v.meet_assign(other);
        v
    }

    /// Increment component `at` by one (the local tick).
    pub fn tick(&mut self, at: usize) {
        self.0[at] += 1;
    }

    /// A borrowed [`ClockView`] of this clock's components.
    #[inline]
    pub fn as_view(&self) -> ClockView<'_> {
        ClockView(&self.0)
    }

    /// `self ≤ other` component-wise.
    pub fn le(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.width(), other.width());
        row_le(&self.0, &other.0)
    }

    /// Strict vector order: `self ≤ other` and `self ≠ other`.
    ///
    /// Under the isomorphism of Definition 13 this is exactly the causality
    /// relation `≺` between the timestamped events.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// Neither `self ≤ other` nor `other ≤ self`: the timestamped events
    /// are concurrent (incomparable under `≺`).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

impl Index<usize> for VectorClock {
    type Output = u32;

    fn index(&self, i: usize) -> &u32 {
        &self.0[i]
    }
}

impl PartialOrd for VectorClock {
    /// The component-wise partial order. Returns `None` for concurrent
    /// (incomparable) clocks.
    fn partial_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.0)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, c) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        assert_eq!(VectorClock::zero(3).components(), &[0, 0, 0]);
        assert_eq!(VectorClock::ones(3).components(), &[1, 1, 1]);
    }

    #[test]
    fn unit_vector() {
        let u = VectorClock::unit(4, 2);
        assert_eq!(u.components(), &[0, 0, 1, 0]);
    }

    #[test]
    fn join_is_componentwise_max() {
        let a = VectorClock::from_components(vec![1, 5, 2]);
        let b = VectorClock::from_components(vec![3, 1, 2]);
        assert_eq!(a.join(&b).components(), &[3, 5, 2]);
    }

    #[test]
    fn meet_is_componentwise_min() {
        let a = VectorClock::from_components(vec![1, 5, 2]);
        let b = VectorClock::from_components(vec![3, 1, 2]);
        assert_eq!(a.meet(&b).components(), &[1, 1, 2]);
    }

    #[test]
    fn strict_order() {
        let a = VectorClock::from_components(vec![1, 2]);
        let b = VectorClock::from_components(vec![1, 3]);
        assert!(a.lt(&b));
        assert!(!b.lt(&a));
        assert!(!a.lt(&a));
    }

    #[test]
    fn concurrent_clocks() {
        let a = VectorClock::from_components(vec![2, 1]);
        let b = VectorClock::from_components(vec![1, 2]);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn partial_cmp_cases() {
        let a = VectorClock::from_components(vec![1, 1]);
        let b = VectorClock::from_components(vec![2, 2]);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn tick_increments_component() {
        let mut a = VectorClock::zero(2);
        a.tick(1);
        a.tick(1);
        assert_eq!(a.components(), &[0, 2]);
    }

    #[test]
    fn join_meet_lattice_laws() {
        let a = VectorClock::from_components(vec![1, 4, 2]);
        let b = VectorClock::from_components(vec![3, 1, 5]);
        let c = VectorClock::from_components(vec![2, 2, 2]);
        // commutativity
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.meet(&b), b.meet(&a));
        // associativity
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
        // absorption
        assert_eq!(a.join(&a.meet(&b)), a);
        assert_eq!(a.meet(&a.join(&b)), a);
    }

    #[test]
    fn display_formats() {
        let a = VectorClock::from_components(vec![1, 2, 3]);
        assert_eq!(a.to_string(), "(1,2,3)");
        assert_eq!(format!("{a:?}"), "VC[1, 2, 3]");
    }

    #[test]
    fn view_mirrors_owned_comparisons() {
        let a = VectorClock::from_components(vec![1, 2, 3]);
        let b = VectorClock::from_components(vec![2, 2, 3]);
        let c = VectorClock::from_components(vec![3, 1, 0]);
        let (va, vb, vc) = (a.as_view(), b.as_view(), c.as_view());
        assert!(va.le(vb) && va.lt(vb) && !vb.lt(va));
        assert!(!va.lt(va) && va.le(va));
        assert!(va.concurrent(vc) == a.concurrent(&c));
        assert_eq!(va.partial_cmp(&vb), a.partial_cmp(&b));
        assert_eq!(va.partial_cmp(&vc), a.partial_cmp(&c));
        assert_eq!(va[1], 2);
        assert_eq!(va.width(), 3);
        assert_eq!(va.to_clock(), a);
        // Both symmetric PartialEq impls, deliberately spelled out.
        #[allow(clippy::nonminimal_bool)]
        {
            assert!(va == a && a == va);
        }
        assert_eq!(va.to_string(), a.to_string());
        assert_eq!(format!("{va:?}"), format!("{a:?}"));
    }
}
