//! Theorem-19 cut summaries: the portable state of a relation test.
//!
//! The paper's Theorem 19 observes that testing any of the eight
//! synchronization relations between nonatomic intervals `X` and `Y`
//! needs only `min(|N_X|, |N_Y|)` timestamp components — the past cuts
//! and per-node extremal member clocks of the *smaller* side, restricted
//! to the other side's node set. That makes the per-interval state a
//! **shippable summary**: a coordinator can resolve a cross-shard
//! relation query by fetching two [`CutSummary`] values instead of any
//! raw event state.
//!
//! A [`CutSummary`] maintains, incrementally per member event:
//!
//! * `∩⇓X` (`c1`): component-wise minimum of member clocks;
//! * `∪⇓X` (`c2`): component-wise maximum of member clocks;
//! * `lo` / `hi`: earliest / latest member per node (1-indexed position
//!   plus that member's full clock).
//!
//! Crucially, summary construction is a **commutative monoid**:
//! [`CutSummary::merge`] of summaries built from disjoint member
//! subsets equals the summary built from the union. Since every process
//! (node) is owned by exactly one shard, per-node extremes never
//! straddle shards and the merge is exact — a sharded monitor merging
//! per-shard summaries evaluates relations byte-identically to an
//! unsharded one ([`eval_now`] is a pure function of the two
//! summaries).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Reader, Writer};
use crate::relations::Relation;
use crate::vclock::VectorClock;

/// Per-node extremal member data: 1-indexed position on the node and
/// the member event's full vector clock.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extreme {
    /// 1-indexed position of the member on its node.
    pub pos: u32,
    /// The member event's vector clock.
    pub clock: VectorClock,
}

impl Extreme {
    /// Append the binary form (`pos`, then the clock components).
    pub fn encode(&self, w: &mut Writer) {
        w.put_u32(self.pos);
        w.put_u32s(self.clock.components());
    }

    /// Inverse of [`Extreme::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Extreme, CodecError> {
        Ok(Extreme {
            pos: r.u32()?,
            clock: VectorClock::from_components(r.u32s()?),
        })
    }
}

fn put_extremes(w: &mut Writer, m: &BTreeMap<usize, Extreme>) {
    w.put_usize(m.len());
    for (&node, e) in m {
        w.put_usize(node);
        e.encode(w);
    }
}

fn read_extremes(r: &mut Reader<'_>) -> Result<BTreeMap<usize, Extreme>, CodecError> {
    let n = r.len_prefix()?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let node = r.usize()?;
        m.insert(node, Extreme::decode(r)?);
    }
    Ok(m)
}

fn put_opt_clock(w: &mut Writer, c: &Option<VectorClock>) {
    match c {
        None => w.put_u8(0),
        Some(c) => {
            w.put_u8(1);
            w.put_u32s(c.components());
        }
    }
}

fn read_opt_clock(r: &mut Reader<'_>) -> Result<Option<VectorClock>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(VectorClock::from_components(r.u32s()?))),
        _ => Err(CodecError::Malformed("option tag")),
    }
}

/// Incrementally maintained Theorem-19 summary of one nonatomic
/// interval: past cuts plus per-node extremal member clocks.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CutSummary {
    /// No further members will arrive.
    pub closed: bool,
    /// Members folded in so far.
    pub count: usize,
    /// Earliest member per node.
    pub lo: BTreeMap<usize, Extreme>,
    /// Latest member per node.
    pub hi: BTreeMap<usize, Extreme>,
    /// `∩⇓X` timestamp: component-wise min of member clocks.
    pub c1: Option<VectorClock>,
    /// `∪⇓X` timestamp: component-wise max of member clocks.
    pub c2: Option<VectorClock>,
}

impl CutSummary {
    /// An empty, open summary.
    pub fn new() -> CutSummary {
        CutSummary::default()
    }

    /// Fold one member event into the summary: position `pos`
    /// (1-indexed) on `node`, carrying `clock`.
    pub fn add_member(&mut self, node: usize, pos: u32, clock: &VectorClock) {
        self.count += 1;
        match self.c1.as_mut() {
            Some(c) => c.meet_assign(clock),
            None => self.c1 = Some(clock.clone()),
        }
        match self.c2.as_mut() {
            Some(c) => c.join_assign(clock),
            None => self.c2 = Some(clock.clone()),
        }
        let e = Extreme {
            pos,
            clock: clock.clone(),
        };
        match self.lo.get(&node) {
            Some(x) if x.pos <= pos => {}
            _ => {
                self.lo.insert(node, e.clone());
            }
        }
        match self.hi.get(&node) {
            Some(x) if x.pos >= pos => {}
            _ => {
                self.hi.insert(node, e);
            }
        }
    }

    /// No member has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The node set `N_X` observed so far.
    pub fn nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.lo.keys().copied()
    }

    /// Fold `other` into `self`.
    ///
    /// When the two summaries were built from **disjoint** member sets
    /// whose nodes do not overlap (each node owned by one builder — the
    /// sharding invariant), the result equals the summary of the union
    /// of the members, exactly.
    pub fn merge(&mut self, other: &CutSummary) {
        self.closed |= other.closed;
        self.count += other.count;
        if let Some(oc1) = &other.c1 {
            match self.c1.as_mut() {
                Some(c) => c.meet_assign(oc1),
                None => self.c1 = Some(oc1.clone()),
            }
        }
        if let Some(oc2) = &other.c2 {
            match self.c2.as_mut() {
                Some(c) => c.join_assign(oc2),
                None => self.c2 = Some(oc2.clone()),
            }
        }
        for (&node, e) in &other.lo {
            match self.lo.get(&node) {
                Some(x) if x.pos <= e.pos => {}
                _ => {
                    self.lo.insert(node, e.clone());
                }
            }
        }
        for (&node, e) in &other.hi {
            match self.hi.get(&node) {
                Some(x) if x.pos >= e.pos => {}
                _ => {
                    self.hi.insert(node, e.clone());
                }
            }
        }
    }

    /// The Theorem-19 projection: restrict every shipped clock to the
    /// components in `nodes` (the *other* side's node set), zeroing the
    /// rest. [`eval_now`] reads only those components, so evaluating
    /// against a projected summary gives the same answer as against the
    /// full one — this is what lets a coordinator ship
    /// `min(|N_X|, |N_Y|)` components instead of full-width state.
    pub fn project(&self, nodes: &[usize]) -> CutSummary {
        let mask = |c: &VectorClock| {
            let mut kept = vec![0u32; c.width()];
            for &n in nodes {
                if n < kept.len() {
                    kept[n] = c[n];
                }
            }
            VectorClock::from_components(kept)
        };
        let mask_extremes = |m: &BTreeMap<usize, Extreme>| {
            m.iter()
                .map(|(&node, e)| {
                    (
                        node,
                        Extreme {
                            pos: e.pos,
                            clock: mask(&e.clock),
                        },
                    )
                })
                .collect()
        };
        CutSummary {
            closed: self.closed,
            count: self.count,
            lo: mask_extremes(&self.lo),
            hi: mask_extremes(&self.hi),
            c1: self.c1.as_ref().map(&mask),
            c2: self.c2.as_ref().map(&mask),
        }
    }

    /// Append the binary form: `closed`, `count`, `lo`, `hi`, `c1`,
    /// `c2` — the layout monitor snapshots have used since v1.
    pub fn encode(&self, w: &mut Writer) {
        w.put_bool(self.closed);
        w.put_usize(self.count);
        put_extremes(w, &self.lo);
        put_extremes(w, &self.hi);
        put_opt_clock(w, &self.c1);
        put_opt_clock(w, &self.c2);
    }

    /// Inverse of [`CutSummary::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<CutSummary, CodecError> {
        Ok(CutSummary {
            closed: r.bool()?,
            count: r.usize()?,
            lo: read_extremes(r)?,
            hi: read_extremes(r)?,
            c1: read_opt_clock(r)?,
            c2: read_opt_clock(r)?,
        })
    }
}

/// Does `rel(X, Y)` hold **for the members seen so far**?
///
/// Past-only evaluation conditions (exact for the current members,
/// assuming disjoint intervals; `N` sets and extremes are the current
/// ones):
///
/// | relation | condition |
/// |----------|-----------|
/// | R1, R1' | `∀i∈N_X : ∩⇓Y[i] ≥ hi_X[i]` |
/// | R2      | `∀i∈N_X : ∪⇓Y[i] ≥ hi_X[i]` |
/// | R2'     | `∃j∈N_Y ∀i∈N_X : T(y_j^max)[i] ≥ hi_X[i]` |
/// | R3      | `∃i∈N_X : ∩⇓Y[i] ≥ lo_X[i]` |
/// | R3'     | `∀j∈N_Y ∃i∈N_X : T(y_j^min)[i] ≥ lo_X[i]` |
/// | R4, R4' | `∃i∈N_X : ∪⇓Y[i] ≥ lo_X[i]` |
pub fn eval_now(rel: Relation, sx: &CutSummary, sy: &CutSummary) -> bool {
    // Quantifier semantics on empty operands.
    if sx.is_empty() || sy.is_empty() {
        return match rel {
            Relation::R1 | Relation::R1p => true, // vacuous ∀∀
            Relation::R2 => sx.is_empty(),
            Relation::R2p => sx.is_empty() && !sy.is_empty(),
            Relation::R3 => !sx.is_empty() && sy.is_empty(),
            Relation::R3p => sy.is_empty(),
            Relation::R4 | Relation::R4p => false,
        };
    }
    let c1y = sy.c1.as_ref().expect("non-empty");
    let c2y = sy.c2.as_ref().expect("non-empty");
    match rel {
        Relation::R1 | Relation::R1p => sx.hi.iter().all(|(&i, e)| c1y[i] >= e.pos),
        Relation::R2 => sx.hi.iter().all(|(&i, e)| c2y[i] >= e.pos),
        Relation::R2p => sy
            .hi
            .values()
            .any(|yc| sx.hi.iter().all(|(&i, e)| yc.clock[i] >= e.pos)),
        Relation::R3 => sx.lo.iter().any(|(&i, e)| c1y[i] >= e.pos),
        Relation::R3p => sy
            .lo
            .values()
            .all(|yc| sx.lo.iter().any(|(&i, e)| yc.clock[i] >= e.pos)),
        Relation::R4 | Relation::R4p => sx.lo.iter().any(|(&i, e)| c2y[i] >= e.pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(v: &[u32]) -> VectorClock {
        VectorClock::from_components(v.to_vec())
    }

    /// Split members across "shards" by node and merge: the result
    /// must equal the summary built sequentially.
    #[test]
    fn merge_of_node_disjoint_parts_is_exact() {
        let members = [
            (0usize, 1u32, clock(&[1, 0, 0])),
            (1, 1, clock(&[0, 1, 0])),
            (0, 3, clock(&[3, 1, 0])),
            (2, 2, clock(&[1, 1, 2])),
            (1, 4, clock(&[2, 4, 1])),
            (2, 5, clock(&[3, 4, 5])),
        ];
        let mut whole = CutSummary::new();
        for (n, p, c) in &members {
            whole.add_member(*n, *p, c);
        }
        // Shard by node % 2, then merge the two halves.
        let mut parts = [CutSummary::new(), CutSummary::new()];
        for (n, p, c) in &members {
            parts[n % 2].add_member(*n, *p, c);
        }
        let mut merged = parts[0].clone();
        merged.merge(&parts[1]);
        assert_eq!(merged, whole);
        // Merge is commutative.
        let mut flipped = parts[1].clone();
        flipped.merge(&parts[0]);
        assert_eq!(flipped, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = CutSummary::new();
        s.add_member(0, 2, &clock(&[2, 1]));
        let orig = s.clone();
        s.merge(&CutSummary::new());
        assert_eq!(s, orig);
        let mut e = CutSummary::new();
        e.merge(&orig);
        assert_eq!(e, orig);
    }

    #[test]
    fn projection_preserves_every_verdict() {
        // Two intervals on disjoint nodes of a 4-process execution.
        let mut sx = CutSummary::new();
        sx.add_member(0, 1, &clock(&[1, 0, 0, 0]));
        sx.add_member(1, 2, &clock(&[1, 2, 0, 0]));
        sx.closed = true;
        let mut sy = CutSummary::new();
        sy.add_member(2, 3, &clock(&[1, 2, 3, 0]));
        sy.add_member(3, 1, &clock(&[0, 0, 0, 1]));
        sy.closed = true;

        let nx: Vec<usize> = sx.nodes().collect();
        let ny: Vec<usize> = sy.nodes().collect();
        // Ship only what Theorem 19 says is needed: Y's clocks
        // restricted to N_X (and vice versa).
        let sy_shipped = sy.project(&nx);
        let sx_shipped = sx.project(&ny);
        for rel in Relation::ALL {
            assert_eq!(
                eval_now(rel, &sx, &sy_shipped),
                eval_now(rel, &sx, &sy),
                "{rel} X,Y under projection"
            );
            assert_eq!(
                eval_now(rel, &sy, &sx_shipped),
                eval_now(rel, &sy, &sx),
                "{rel} Y,X under projection"
            );
        }
    }

    #[test]
    fn empty_operand_quantifiers() {
        let empty = CutSummary::new();
        let mut some = CutSummary::new();
        some.add_member(0, 1, &clock(&[1]));
        assert!(eval_now(Relation::R1, &empty, &some));
        assert!(eval_now(Relation::R1, &empty, &empty));
        assert!(eval_now(Relation::R2, &empty, &some));
        assert!(!eval_now(Relation::R2, &some, &empty));
        assert!(eval_now(Relation::R2p, &empty, &some));
        assert!(!eval_now(Relation::R2p, &empty, &empty));
        assert!(eval_now(Relation::R3, &some, &empty));
        assert!(!eval_now(Relation::R3, &empty, &some));
        assert!(eval_now(Relation::R3p, &some, &empty));
        assert!(!eval_now(Relation::R4, &empty, &some));
        assert!(!eval_now(Relation::R4p, &some, &empty));
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut s = CutSummary::new();
        s.add_member(0, 1, &clock(&[1, 0]));
        s.add_member(1, 3, &clock(&[1, 3]));
        s.closed = true;
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = CutSummary::decode(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(back, s);
        // Empty summary too.
        let mut w = Writer::new();
        CutSummary::new().encode(&mut w);
        let bytes = w.into_bytes();
        let back = CutSummary::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, CutSummary::new());
    }
}
