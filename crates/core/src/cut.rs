//! Cuts of an execution and the `≪` relation between them (paper §2.1).
//!
//! A **cut** (Definition 5) is the union of a downward-closed subset of
//! each per-process chain `E_i`, always containing every dummy initial
//! event `⊥ᵢ`:
//!
//! ```text
//! C ⊆ E  ∧  E^⊥ ⊆ C  ∧  (e_i ∈ C ⟹ ∀e'_i ≺ e_i : e'_i ∈ C)
//! ```
//!
//! Note that closure is only required *within* each partition — cuts here
//! are per-process prefixes, **not** necessarily consistent global states
//! (indeed `e⇑` of Definition 9 is a cut but is not downward-closed in
//! `(E, ≺)`).
//!
//! Because each `C ∩ E_i` is a non-empty prefix, a cut is fully described
//! by the per-process prefix lengths, which by Definition 15 are exactly
//! the components of the cut's timestamp `T(C)`. [`Cut`] stores these
//! counts; [`EventSet`] is the extensional representation used for
//! ground-truth set algebra in tests and validation.
//!
//! The **surface** `S(C)` (Definition 6) is the set of latest events of
//! `C` at each node. The `≪` relation (Definition 7) strengthens proper
//! containment: `≪(C, C')` requires every non-`⊥` surface event of `C` to
//! lie strictly inside `C'`. Its violation `≪̸(C, C')` — some surface
//! event of `C` equals or happens causally after some surface event of
//! `C'` — is the workhorse predicate behind every relation evaluation
//! condition in Table 1.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::execution::{EventId, Execution, ProcessId};
use crate::vclock::VectorClock;

/// Extensional set of events of a fixed execution, with per-process
/// membership bitmaps. Ground truth for the count-based [`Cut`] algebra.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventSet {
    incl: Vec<Vec<bool>>,
}

impl EventSet {
    /// The empty set, shaped for `exec`.
    pub fn empty(exec: &Execution) -> Self {
        EventSet {
            incl: (0..exec.num_processes())
                .map(|p| vec![false; exec.len(ProcessId(p as u32)) as usize])
                .collect(),
        }
    }

    /// Build from an iterator of events.
    pub fn from_events<I: IntoIterator<Item = EventId>>(exec: &Execution, events: I) -> Self {
        let mut s = EventSet::empty(exec);
        for e in events {
            s.insert(e);
        }
        s
    }

    /// Insert an event.
    pub fn insert(&mut self, e: EventId) {
        self.incl[e.process.idx()][e.index as usize] = true;
    }

    /// Remove an event.
    pub fn remove(&mut self, e: EventId) {
        self.incl[e.process.idx()][e.index as usize] = false;
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        self.incl
            .get(e.process.idx())
            .and_then(|v| v.get(e.index as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.incl
            .iter()
            .map(|v| v.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.incl.iter().all(|v| v.iter().all(|&b| !b))
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &EventSet) {
        for (a, b) in self.incl.iter_mut().zip(&other.incl) {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= *y;
            }
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &EventSet) {
        for (a, b) in self.incl.iter_mut().zip(&other.incl) {
            for (x, y) in a.iter_mut().zip(b) {
                *x &= *y;
            }
        }
    }

    /// Subset test `self ⊆ other`.
    pub fn is_subset(&self, other: &EventSet) -> bool {
        self.incl
            .iter()
            .zip(&other.incl)
            .all(|(a, b)| a.iter().zip(b).all(|(&x, &y)| !x || y))
    }

    /// All member events, in `(process, index)` order.
    pub fn events(&self) -> Vec<EventId> {
        let mut out = Vec::new();
        for (p, v) in self.incl.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                if b {
                    out.push(EventId::new(p as u32, i as u32));
                }
            }
        }
        out
    }
}

/// A cut (Definition 5), stored as per-process prefix lengths.
///
/// `counts[i] ∈ 1..=|E_i|` is the number of events of `E_i` in the cut;
/// `counts[i] ≥ 1` because `⊥ᵢ ∈ C` always. By Definition 15 these counts
/// are exactly the components of the cut's timestamp `T(C)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cut {
    counts: Vec<u32>,
}

impl Cut {
    /// The bottom cut `E^⊥` (only the dummy initial events).
    pub fn bottom(exec: &Execution) -> Self {
        Cut {
            counts: vec![1; exec.num_processes()],
        }
    }

    /// The full cut `E` (every event, dummies included).
    pub fn full(exec: &Execution) -> Self {
        Cut {
            counts: (0..exec.num_processes())
                .map(|p| exec.len(ProcessId(p as u32)))
                .collect(),
        }
    }

    /// Construct from per-process prefix lengths, validating the
    /// Definition-5 bounds against `exec`.
    pub fn from_counts(exec: &Execution, counts: Vec<u32>) -> Result<Self> {
        if counts.len() != exec.num_processes() {
            return Err(Error::NotACut);
        }
        for (p, &c) in counts.iter().enumerate() {
            if c < 1 || c > exec.len(ProcessId(p as u32)) {
                return Err(Error::NotACut);
            }
        }
        Ok(Cut { counts })
    }

    /// Construct without validation. The caller asserts Definition 5.
    pub fn from_counts_unchecked(counts: Vec<u32>) -> Self {
        Cut { counts }
    }

    /// Validate an extensional event set as a cut (Definition 5) and
    /// convert it: every `⊥ᵢ` present and every `C ∩ E_i` a prefix.
    pub fn from_event_set(exec: &Execution, set: &EventSet) -> Result<Self> {
        let mut counts = Vec::with_capacity(exec.num_processes());
        for p in 0..exec.num_processes() {
            let pid = ProcessId(p as u32);
            if !set.contains(exec.bottom(pid)) {
                return Err(Error::NotACut);
            }
            let len = exec.len(pid);
            let mut c = 0;
            let mut ended = false;
            for i in 0..len {
                let inside = set.contains(EventId {
                    process: pid,
                    index: i,
                });
                if inside {
                    if ended {
                        return Err(Error::NotACut); // gap: not a prefix
                    }
                    c = i + 1;
                } else {
                    ended = true;
                }
            }
            counts.push(c);
        }
        Ok(Cut { counts })
    }

    /// Expand to the extensional representation.
    pub fn to_event_set(&self, exec: &Execution) -> EventSet {
        let mut s = EventSet::empty(exec);
        for (p, &c) in self.counts.iter().enumerate() {
            for i in 0..c {
                s.insert(EventId::new(p as u32, i));
            }
        }
        s
    }

    /// Number of processes.
    #[inline]
    pub fn width(&self) -> usize {
        self.counts.len()
    }

    /// The prefix length (= timestamp component, Definition 15) at node `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// All prefix lengths.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: EventId) -> bool {
        e.index < self.counts[e.process.idx()]
    }

    /// The surface event `[S(C)]_i`: the latest cut event at node `i`
    /// (Definition 6). Always exists because `⊥ᵢ ∈ C`.
    #[inline]
    pub fn surface_at(&self, i: usize) -> EventId {
        EventId::new(i as u32, self.counts[i] - 1)
    }

    /// The full surface `S(C)` (Definition 6).
    pub fn surface(&self) -> Vec<EventId> {
        (0..self.counts.len()).map(|i| self.surface_at(i)).collect()
    }

    /// Is this the bottom cut `E^⊥`?
    pub fn is_bottom(&self) -> bool {
        self.counts.iter().all(|&c| c == 1)
    }

    /// The cut's timestamp `T(C)` as a vector clock (Definition 15).
    ///
    /// `T(C)[i]` equals the prefix length at node `i` — the own component
    /// of the timestamp of the latest cut event at `i`.
    pub fn timestamp(&self) -> VectorClock {
        VectorClock::from_components(self.counts.clone())
    }

    /// Definition 15 computed extensionally — the max over the cut's
    /// events at node `i` of `T(x)[i]` — for validating [`Cut::timestamp`].
    pub fn timestamp_extensional(&self, exec: &Execution) -> VectorClock {
        let mut comps = vec![0u32; self.counts.len()];
        for (i, comp) in comps.iter_mut().enumerate() {
            for idx in 0..self.counts[i] {
                let e = EventId::new(i as u32, idx);
                *comp = (*comp).max(exec.clock(e)[i]);
            }
        }
        VectorClock::from_components(comps)
    }

    /// Node set `N_C` of the cut per Definition 1: nodes where the cut
    /// contains a non-dummy event.
    pub fn node_set(&self, exec: &Execution) -> Vec<usize> {
        (0..self.counts.len())
            .filter(|&i| self.counts[i] >= 2 && exec.len(ProcessId(i as u32)) > 2)
            .collect()
    }

    /// Lattice join: the union cut (Lemma 16, max of timestamps).
    pub fn union(&self, other: &Cut) -> Cut {
        Cut {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Lattice meet: the intersection cut (Lemma 16, min of timestamps).
    pub fn intersection(&self, other: &Cut) -> Cut {
        Cut {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.min(b))
                .collect(),
        }
    }

    /// Containment `self ⊆ other`.
    pub fn is_subset(&self, other: &Cut) -> bool {
        self.counts.iter().zip(&other.counts).all(|(&a, &b)| a <= b)
    }

    /// Strict containment `self ⊂ other`.
    pub fn is_proper_subset(&self, other: &Cut) -> bool {
        self.is_subset(other) && self != other
    }
}

impl fmt::Debug for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cut{:?}", self.counts)
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (k, c) in self.counts.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// The four (equivalent) forms of Definition 7 of the `≪` relation,
/// implemented literally and independently for cross-validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlForm {
    /// `≪(C,C') iff (∀z ∈ S(C)∖E^⊥ : z ∉ S(C') ∧ z ∈ C') ∧ C' ≠ E^⊥`
    Form1,
    /// The complement form: `≪̸(C,C') iff (∃z ∈ S(C)∖E^⊥ : z ∈ S(C') ∨ z ∉ C') ∨ C' = E^⊥`
    Form2,
    /// `≪(C,C') iff (∀z ∈ S(C')∖E^⊥ : z ∉ C) ∧ C' ≠ E^⊥ ∧ N_C ⊆ N_{C'}`
    Form3,
    /// The complement form: `≪̸(C,C') iff (∃z ∈ S(C')∖E^⊥ : z ∈ C) ∨ C' = E^⊥ ∨ N_C ⊄ N_{C'}`
    Form4,
}

/// Evaluate `≪(c, cp)` extensionally per the chosen form of Definition 7.
///
/// Forms 1/2 and 3/4 are provably pairwise complementary; all four agree
/// whenever every process has at least one application event. (On
/// executions with application-empty processes, Forms 1 and 3 can diverge
/// when `C` contains such a process's `⊤ᵢ` — see the `form_divergence`
/// test and `EXPERIMENTS.md`.)
pub fn ll_extensional(exec: &Execution, c: &Cut, cp: &Cut, form: LlForm) -> bool {
    let cset = c.to_event_set(exec);
    let cpset = cp.to_event_set(exec);
    let surf_c: Vec<EventId> = c.surface().into_iter().filter(|z| z.index >= 1).collect();
    // The full surface of C' (⊥ entries included): Forms 1/2 test the
    // membership of *non-⊥* events of S(C), and those can never equal a
    // ⊥ surface entry, so the precomputed surface is used for every
    // element instead of rebuilding S(C') per test.
    let full_surf_cp: Vec<EventId> = cp.surface();
    let surf_cp: Vec<EventId> = full_surf_cp
        .iter()
        .copied()
        .filter(|z| z.index >= 1)
        .collect();
    let in_surface = |surf: &[EventId], z: EventId| surf.contains(&z);
    match form {
        LlForm::Form1 => {
            surf_c
                .iter()
                .all(|&z| !in_surface(&full_surf_cp, z) && cpset.contains(z))
                && !cp.is_bottom()
        }
        LlForm::Form2 => {
            let not_ll = surf_c
                .iter()
                .any(|&z| in_surface(&full_surf_cp, z) || !cpset.contains(z))
                || cp.is_bottom();
            !not_ll
        }
        LlForm::Form3 => {
            let nc = c.node_set(exec);
            let ncp = cp.node_set(exec);
            surf_cp.iter().all(|&z| !cset.contains(z))
                && !cp.is_bottom()
                && nc.iter().all(|i| ncp.contains(i))
        }
        LlForm::Form4 => {
            let nc = c.node_set(exec);
            let ncp = cp.node_set(exec);
            let not_ll = surf_cp.iter().any(|&z| cset.contains(z))
                || cp.is_bottom()
                || !nc.iter().all(|i| ncp.contains(i));
            !not_ll
        }
    }
}

/// Fast `≪(c, cp)` in `O(|P|)` integer comparisons over the count
/// representation (equivalent to Form 1):
///
/// `≪(C,C') ⟺ [∀i : T(C)[i] ≥ 2 ⟹ T(C)[i] < T(C')[i]] ∧ C' ≠ E^⊥`.
pub fn ll(c: &Cut, cp: &Cut) -> bool {
    debug_assert_eq!(c.width(), cp.width());
    let mut cp_nonbottom = false;
    for i in 0..c.width() {
        let (a, b) = (c.counts[i], cp.counts[i]);
        if b >= 2 {
            cp_nonbottom = true;
        }
        if a >= 2 && a >= b {
            return false;
        }
    }
    cp_nonbottom
}

/// Fast `≪̸(c, cp)` — the violation of `≪`, the predicate used by every
/// evaluation condition in Table 1. When it holds, some event in `S(C)`
/// equals or happens causally after some event in `S(C')`.
#[inline]
pub fn not_ll(c: &Cut, cp: &Cut) -> bool {
    !ll(c, cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionBuilder;

    fn sample_exec() -> Execution {
        // p0: ⊥ a s ⊤ ; p1: ⊥ r b ⊤ ; p2: ⊥ c ⊤
        let mut b = ExecutionBuilder::new(3);
        b.internal(0);
        let (_, m) = b.send(0);
        b.recv(1, m).unwrap();
        b.internal(1);
        b.internal(2);
        b.build().unwrap()
    }

    #[test]
    fn bottom_and_full() {
        let e = sample_exec();
        let bot = Cut::bottom(&e);
        let full = Cut::full(&e);
        assert!(bot.is_bottom());
        assert!(!full.is_bottom());
        assert_eq!(bot.counts(), &[1, 1, 1]);
        assert_eq!(full.counts(), &[4, 4, 3]);
        assert!(bot.is_proper_subset(&full));
    }

    #[test]
    fn from_counts_validation() {
        let e = sample_exec();
        assert!(Cut::from_counts(&e, vec![1, 2, 3]).is_ok());
        assert!(Cut::from_counts(&e, vec![0, 2, 3]).is_err()); // below 1
        assert!(Cut::from_counts(&e, vec![1, 2, 4]).is_err()); // above |E_2|
        assert!(Cut::from_counts(&e, vec![1, 2]).is_err()); // wrong width
    }

    #[test]
    fn membership_and_surface() {
        let e = sample_exec();
        let c = Cut::from_counts(&e, vec![3, 2, 1]).unwrap();
        assert!(c.contains(EventId::new(0, 0)));
        assert!(c.contains(EventId::new(0, 2)));
        assert!(!c.contains(EventId::new(0, 3)));
        assert!(c.contains(EventId::new(1, 1)));
        assert!(!c.contains(EventId::new(1, 2)));
        assert_eq!(
            c.surface(),
            vec![EventId::new(0, 2), EventId::new(1, 1), EventId::new(2, 0)]
        );
    }

    #[test]
    fn event_set_roundtrip() {
        let e = sample_exec();
        let c = Cut::from_counts(&e, vec![2, 3, 1]).unwrap();
        let s = c.to_event_set(&e);
        assert_eq!(s.len(), 6);
        let c2 = Cut::from_event_set(&e, &s).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn event_set_cut_validation() {
        let e = sample_exec();
        // Missing ⊥₂ — not a cut.
        let mut s = Cut::from_counts(&e, vec![2, 2, 1])
            .unwrap()
            .to_event_set(&e);
        s.remove(EventId::new(2, 0));
        assert_eq!(Cut::from_event_set(&e, &s), Err(Error::NotACut));
        // Gap in the prefix — not a cut.
        let mut s = Cut::from_counts(&e, vec![3, 1, 1])
            .unwrap()
            .to_event_set(&e);
        s.remove(EventId::new(0, 1));
        assert_eq!(Cut::from_event_set(&e, &s), Err(Error::NotACut));
    }

    #[test]
    fn event_set_algebra() {
        let e = sample_exec();
        let a = EventSet::from_events(&e, [EventId::new(0, 0), EventId::new(0, 1)]);
        let b = EventSet::from_events(&e, [EventId::new(0, 1), EventId::new(1, 1)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.events(), vec![EventId::new(0, 1)]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(EventSet::empty(&e).is_empty());
    }

    #[test]
    fn timestamp_matches_definition_15() {
        let e = sample_exec();
        for c0 in 1..=4u32 {
            for c1 in 1..=4u32 {
                for c2 in 1..=3u32 {
                    let c = Cut::from_counts(&e, vec![c0, c1, c2]).unwrap();
                    assert_eq!(
                        c.timestamp(),
                        c.timestamp_extensional(&e),
                        "Definition 15 disagreement on {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn lattice_laws() {
        let e = sample_exec();
        let a = Cut::from_counts(&e, vec![3, 1, 2]).unwrap();
        let b = Cut::from_counts(&e, vec![2, 4, 1]).unwrap();
        let u = a.union(&b);
        let i = a.intersection(&b);
        assert_eq!(u.counts(), &[3, 4, 2]);
        assert_eq!(i.counts(), &[2, 1, 1]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(a.is_subset(&u) && b.is_subset(&u));
        // Lemma 16: union/intersection of cuts is max/min of timestamps.
        assert_eq!(u.timestamp(), a.timestamp().join(&b.timestamp()));
        assert_eq!(i.timestamp(), a.timestamp().meet(&b.timestamp()));
        // extensional agreement
        let mut us = a.to_event_set(&e);
        us.union_with(&b.to_event_set(&e));
        assert_eq!(Cut::from_event_set(&e, &us).unwrap(), u);
        let mut is = a.to_event_set(&e);
        is.intersect_with(&b.to_event_set(&e));
        assert_eq!(Cut::from_event_set(&e, &is).unwrap(), i);
    }

    #[test]
    fn node_set_excludes_dummy_only() {
        let e = sample_exec();
        let c = Cut::from_counts(&e, vec![2, 1, 3]).unwrap();
        // node 0: contains app event a ✓; node 1: only ⊥ ✗;
        // node 2: contains c (and ⊤₂) ✓.
        assert_eq!(c.node_set(&e), vec![0, 2]);
        // An app-empty process never enters a node set.
        let mut b = ExecutionBuilder::new(2);
        b.internal(0);
        let e2 = b.build().unwrap();
        let full = Cut::full(&e2);
        assert_eq!(full.node_set(&e2), vec![0]);
    }

    /// Enumerate all cuts of the sample execution.
    fn all_cuts(e: &Execution) -> Vec<Cut> {
        let mut out = Vec::new();
        for c0 in 1..=e.len(ProcessId(0)) {
            for c1 in 1..=e.len(ProcessId(1)) {
                for c2 in 1..=e.len(ProcessId(2)) {
                    out.push(Cut::from_counts(e, vec![c0, c1, c2]).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn ll_forms_agree_and_match_fast() {
        let e = sample_exec();
        let cuts = all_cuts(&e);
        for c in &cuts {
            for cp in &cuts {
                let f1 = ll_extensional(&e, c, cp, LlForm::Form1);
                let f2 = ll_extensional(&e, c, cp, LlForm::Form2);
                let f3 = ll_extensional(&e, c, cp, LlForm::Form3);
                let f4 = ll_extensional(&e, c, cp, LlForm::Form4);
                assert_eq!(f1, f2, "form1 vs form2 on ({c}, {cp})");
                assert_eq!(f3, f4, "form3 vs form4 on ({c}, {cp})");
                assert_eq!(f1, f3, "form1 vs form3 on ({c}, {cp})");
                assert_eq!(f1, ll(c, cp), "fast ll on ({c}, {cp})");
                assert_eq!(!f1, not_ll(c, cp));
            }
        }
    }

    #[test]
    fn ll_implies_proper_containment() {
        // ≪(C,C') implies C ⊂ C' and per-node proper containment where C
        // has non-⊥ events.
        let e = sample_exec();
        let cuts = all_cuts(&e);
        for c in &cuts {
            for cp in &cuts {
                if ll(c, cp) {
                    for i in 0..3 {
                        if c.count(i) >= 2 {
                            assert!(c.count(i) < cp.count(i));
                        }
                    }
                    assert!(!cp.is_bottom());
                }
            }
        }
    }

    #[test]
    fn ll_is_irreflexive_and_transitive() {
        let e = sample_exec();
        let cuts = all_cuts(&e);
        for c in &cuts {
            if !c.is_bottom() {
                assert!(!ll(c, c), "≪ must be irreflexive on {c}");
            }
        }
        for a in &cuts {
            for b in &cuts {
                if !ll(a, b) {
                    continue;
                }
                for c in &cuts {
                    if ll(b, c) {
                        assert!(ll(a, c), "≪ must be transitive: {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn ll_bottom_cases() {
        let e = sample_exec();
        let bot = Cut::bottom(&e);
        let full = Cut::full(&e);
        // Bottom ≪ anything non-bottom (its surface has no non-⊥ events).
        assert!(ll(&bot, &full));
        // Nothing ≪ bottom (robustness term C' ≠ E^⊥).
        assert!(!ll(&full, &bot));
        assert!(!ll(&bot, &bot));
    }

    #[test]
    fn form_divergence_on_app_empty_process() {
        // Documented edge case: process 1 has no application events.
        // C contains ⊤₁ while C' does not reach past ⊥₁; Form 1 rejects
        // (the surface event ⊤₁ cannot be strictly inside C'), Form 3
        // accepts (⊤₁ is invisible to node sets and to S(C')).
        let mut b = ExecutionBuilder::new(2);
        b.internal(0);
        b.internal(0);
        let e = b.build().unwrap();
        let c = Cut::from_counts(&e, vec![1, 2]).unwrap(); // {⊥₀, ⊥₁, ⊤₁}
        let cp = Cut::from_counts(&e, vec![3, 1]).unwrap(); // {⊥₀,a,b, ⊥₁}
        let f1 = ll_extensional(&e, &c, &cp, LlForm::Form1);
        let f3 = ll_extensional(&e, &c, &cp, LlForm::Form3);
        assert!(!f1, "Form 1 rejects: surface ⊤₁ ∉ C'");
        assert!(f3, "Form 3 accepts: S(C') has no event at node 1");
        assert_ne!(f1, f3, "the documented divergence");
    }

    #[test]
    fn display_and_debug() {
        let e = sample_exec();
        let c = Cut::from_counts(&e, vec![1, 2, 3]).unwrap();
        assert_eq!(c.to_string(), "⟨1,2,3⟩");
        assert_eq!(format!("{c:?}"), "Cut[1, 2, 3]");
    }
}
