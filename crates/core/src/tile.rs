//! Tile-parallel scheduling for all-pairs sweeps.
//!
//! The previous parallel engine handed out work through one shared
//! `AtomicUsize` that every worker hit on every claim. On small claims
//! that counter is the hot path: past two threads the cache line
//! carrying it ping-pongs between cores and throughput *regresses*
//! (measured in `BENCH_pairs.json` v2). The pair matrix does not need
//! dynamic scheduling for the bulk of its area — every `(X, Y)` pair
//! reads only immutable summary rows (the lattice-of-cuts evaluation
//! is pair-independent), so any static partition is legal.
//!
//! [`TilePartition`] therefore splits an index space `[0, n)` into
//!
//! * one **static contiguous band per worker** covering ~7/8 of the
//!   items — claimed at spawn time, touched by no atomics at all — and
//! * a shared **steal tail** (the last ~1/8, in `grain`-sized chunks)
//!   that workers drain through a single counter *after* finishing
//!   their band, so skewed per-item costs (node-count skew in the
//!   fused/counted modes) still balance without putting the counter on
//!   the hot path.
//!
//! Workers write results straight into the caller's output buffer via
//! [`RowSlabs`]: each item owns a fixed-size disjoint slab, so there is
//! no per-worker `Vec` collection, no reassembly pass, and no false
//! sharing on result writes (bands are contiguous, so two workers only
//! ever share the one cache line at a band boundary).
//!
//! The same partition schedules 2-D tile sweeps: the detector blocks
//! the Y dimension in [`DEFAULT_TILE`]-column tiles *inside* each
//! worker's row band (see `Detector::all_pairs_parallel`), which keeps
//! one tile of Y-side summary planes resident in L1/L2 while every X
//! row of the band streams against it.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default tile width (Y columns per cache block, and the steal grain
/// in rows). One tile of batched Y-side operands is
/// `2 proxies × 3 segments × |P| × 64 × 4 B` ≈ 24 KiB at `|P| = 16` —
/// comfortably L1/L2-resident while a whole row band streams over it.
pub const DEFAULT_TILE: usize = 64;

/// Fraction of items held back as the shared steal tail (1/8). The
/// static bands cover the rest, so in the balanced case the one atomic
/// counter is touched only `threads + tail/grain` times per sweep.
const STEAL_TAIL_SHIFT: u32 = 3;

/// A static-bands-plus-steal-tail partition of `[0, n)`.
///
/// Built once per sweep; [`TilePartition::run`] executes one worker per
/// band on scoped threads. Every index is dispatched exactly once, as
/// part of exactly one contiguous range, which is the invariant
/// [`RowSlabs`] writers rely on.
#[derive(Debug)]
pub struct TilePartition {
    /// Static per-worker bands, all disjoint, covering `[0, tail.start)`.
    bands: Vec<Range<usize>>,
    /// The shared stealable tail `[tail.start, n)`.
    tail: Range<usize>,
    /// Chunk size of tail claims (and the caller's tile height).
    grain: usize,
}

impl TilePartition {
    /// Partition `n` items across `threads` workers with steal chunks
    /// of `grain` items. `threads` is clamped to `[1, n]` (one worker
    /// still gets a partition over an empty space), `grain` to `≥ 1`.
    pub fn new(n: usize, threads: usize, grain: usize) -> TilePartition {
        let threads = threads.max(1).min(n.max(1));
        let grain = grain.max(1);
        if threads == 1 {
            // Nothing to balance: one band, empty tail, no atomics.
            #[allow(clippy::single_range_in_vec_init)]
            return TilePartition {
                bands: vec![0..n],
                tail: n..n,
                grain,
            };
        }
        // Hold back ~1/8 of the items, rounded up to whole grains, as
        // the shared tail; never more than the whole space.
        let tail_len = (n >> STEAL_TAIL_SHIFT).div_ceil(grain) * grain;
        let static_len = n - tail_len.min(n);
        let mut bands = Vec::with_capacity(threads);
        let (base, extra) = (static_len / threads, static_len % threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < extra);
            bands.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, static_len);
        TilePartition {
            bands,
            tail: static_len..n,
            grain,
        }
    }

    /// Number of workers (= static bands).
    pub fn threads(&self) -> usize {
        self.bands.len()
    }

    /// The steal grain (tail chunk size).
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// The shared steal tail (empty for single-worker partitions).
    pub fn tail(&self) -> Range<usize> {
        self.tail.clone()
    }

    /// Every contiguous range the partition will dispatch, in worker
    /// order then tail order (for tests and introspection).
    pub fn ranges(&self) -> Vec<Range<usize>> {
        let mut out: Vec<Range<usize>> = self
            .bands
            .iter()
            .filter(|b| !b.is_empty())
            .cloned()
            .collect();
        let mut s = self.tail.start;
        while s < self.tail.end {
            let e = (s + self.grain).min(self.tail.end);
            out.push(s..e);
            s = e;
        }
        out
    }

    /// Run `work` over the whole space: worker `w` takes ownership of
    /// `contexts[w]` (its meter fork, scratch buffers, …), processes
    /// its static band, then drains tail chunks off the shared counter.
    /// Contexts are returned for post-join absorption.
    ///
    /// With one worker everything runs inline on the caller's thread —
    /// no spawn, no atomics — so small inputs pay nothing.
    ///
    /// `work` may be called multiple times per worker (band + stolen
    /// chunks), each time with a range disjoint from every other call
    /// across all workers, and with every index in `[0, n)` covered
    /// exactly once per sweep.
    pub fn run<C, F>(&self, contexts: Vec<C>, work: F) -> Vec<C>
    where
        C: Send,
        F: Fn(&C, Range<usize>) + Sync,
    {
        assert_eq!(
            contexts.len(),
            self.threads(),
            "one context per worker band"
        );
        if self.threads() == 1 {
            if !self.bands[0].is_empty() {
                work(&contexts[0], self.bands[0].clone());
            }
            return contexts;
        }
        let next = AtomicUsize::new(self.tail.start);
        std::thread::scope(|scope| {
            let handles: Vec<_> = contexts
                .into_iter()
                .zip(&self.bands)
                .map(|(ctx, band)| {
                    let (next, work, band) = (&next, &work, band.clone());
                    scope.spawn(move || {
                        if !band.is_empty() {
                            work(&ctx, band);
                        }
                        loop {
                            let s = next.fetch_add(self.grain, Ordering::Relaxed);
                            if s >= self.tail.end {
                                break;
                            }
                            work(&ctx, s..(s + self.grain).min(self.tail.end));
                        }
                        ctx
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tile worker panicked"))
                .collect()
        })
    }
}

/// Disjoint per-item output slabs over one flat buffer.
///
/// Item `i` owns `buf[i · per_item .. (i + 1) · per_item]`. A worker
/// that has been dispatched item `i` by a [`TilePartition`] is its only
/// writer, so handing out `&mut` slabs from a shared reference is
/// sound; the unsafety is confined to [`RowSlabs::item_mut`] with the
/// dispatch-disjointness invariant as its contract.
pub struct RowSlabs<'a, T> {
    ptr: *mut T,
    per_item: usize,
    items: usize,
    _buf: PhantomData<&'a mut [T]>,
}

// SAFETY: the slab pointer is only ever turned into disjoint `&mut [T]`
// regions (one per item, each owned by one worker), so sharing the
// handle across worker threads is equivalent to pre-splitting the
// buffer with `split_at_mut`.
unsafe impl<T: Send> Sync for RowSlabs<'_, T> {}

impl<'a, T: Send> RowSlabs<'a, T> {
    /// Wrap `buf` as `items` slabs of `per_item` elements each.
    pub fn new(buf: &'a mut [T], per_item: usize) -> RowSlabs<'a, T> {
        assert!(per_item > 0, "slabs must be non-empty");
        assert_eq!(
            buf.len() % per_item,
            0,
            "buffer is not a whole number of slabs"
        );
        RowSlabs {
            ptr: buf.as_mut_ptr(),
            per_item,
            items: buf.len() / per_item,
            _buf: PhantomData,
        }
    }

    /// Number of slabs.
    pub fn items(&self) -> usize {
        self.items
    }

    /// The mutable slab of item `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `i` was dispatched to it exclusively
    /// (a [`TilePartition`] range it alone received), so no other
    /// live `&mut` slab for the same `i` exists.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn item_mut(&self, i: usize) -> &mut [T] {
        assert!(i < self.items, "slab index {i} out of {}", self.items);
        // SAFETY: bounds asserted above; disjointness from all other
        // outstanding slabs is the caller's contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.per_item), self.per_item) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    /// Every index dispatched exactly once, in disjoint contiguous
    /// ranges, for many (n, threads, grain) shapes.
    #[test]
    fn partition_covers_exactly_once() {
        for n in [0usize, 1, 2, 7, 63, 64, 65, 1000] {
            for threads in [1usize, 2, 3, 8, 100] {
                for grain in [1usize, 7, 64, 1000] {
                    let part = TilePartition::new(n, threads, grain);
                    assert!(part.threads() >= 1);
                    assert!(part.threads() <= threads.max(1));
                    let mut seen = vec![0u32; n];
                    for r in part.ranges() {
                        for i in r {
                            seen[i] += 1;
                        }
                    }
                    assert!(
                        seen.iter().all(|&c| c == 1),
                        "n={n} threads={threads} grain={grain}: {seen:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_worker_has_no_tail() {
        let part = TilePartition::new(100, 1, 8);
        assert_eq!(part.threads(), 1);
        assert!(part.tail().is_empty());
        assert_eq!(part.ranges(), vec![0..100]);
    }

    #[test]
    fn tail_is_grain_aligned_fraction() {
        let part = TilePartition::new(1024, 8, 64);
        let tail = part.tail();
        assert_eq!(tail.len() % 64, 0);
        assert!(tail.len() >= 1024 >> STEAL_TAIL_SHIFT);
        assert!(tail.len() <= (1024 >> STEAL_TAIL_SHIFT) + 64);
    }

    /// `run` dispatches every index exactly once across real threads.
    #[test]
    fn run_covers_space_concurrently() {
        for (n, threads, grain) in [(257, 4, 16), (64, 8, 64), (5, 8, 1), (0, 4, 8)] {
            let part = TilePartition::new(n, threads, grain);
            let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let contexts: Vec<usize> = (0..part.threads()).collect();
            let back = part.run(contexts, |_, range| {
                seen.lock().unwrap().extend(range);
            });
            assert_eq!(back.len(), part.threads(), "contexts returned");
            let mut all = seen.into_inner().unwrap();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} threads={threads}");
        }
    }

    /// Contexts round-trip through the workers that owned them.
    #[test]
    fn run_returns_all_contexts() {
        let part = TilePartition::new(100, 4, 8);
        let back = part.run(vec![10usize, 20, 30, 40], |_, _| {});
        let set: BTreeSet<usize> = back.into_iter().collect();
        assert_eq!(set, BTreeSet::from([10, 20, 30, 40]));
    }

    #[test]
    fn slabs_give_disjoint_rows() {
        let mut buf = vec![0u32; 12];
        let slabs = RowSlabs::new(&mut buf, 3);
        assert_eq!(slabs.items(), 4);
        let part = TilePartition::new(4, 2, 1);
        part.run(vec![(), ()], |_, range| {
            for i in range {
                // SAFETY: each item dispatched to exactly one worker.
                let row = unsafe { slabs.item_mut(i) };
                row.fill(i as u32 + 1);
            }
        });
        assert_eq!(buf, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "whole number of slabs")]
    fn slabs_reject_ragged_buffers() {
        let mut buf = vec![0u8; 10];
        let _ = RowSlabs::new(&mut buf, 3);
    }
}
