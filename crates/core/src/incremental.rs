//! Incremental Problem-4 detection with implication-lattice pruning.
//!
//! The batch detector answers Problem 4 by re-running an all-pairs
//! sweep; every new event costs O(pairs). [`IncrementalDetector`]
//! instead maintains per-pair verdict state and, on each arriving
//! event, re-evaluates only the pairs the event can still move:
//!
//! * **Interval state** — per interval only the per-node extremes
//!   (`lo`/`hi`) plus a closed flag are kept. Per-node proxies
//!   (Definition 2) are functions of the extremes alone, so the
//!   [`ProxySummary`] of the *arrived prefix* of an interval can be
//!   rebuilt lazily from at most `2·|P|` events.
//! * **Pair state** — per ordered pair and proxy combination `(X̂, Ŷ)`
//!   a byte of live verdict bits plus a *settled* mask: bits whose
//!   verdict provably can never change again, whatever arrives later.
//!   A fully settled pair leaves the partner lists (the inverted index
//!   from interval to open pairs) and is never touched again.
//! * **Touch set** — an arrival at interval `Z` re-scans, for each
//!   still-open partner pair, only the proxy combinations whose `Z`
//!   operand actually changed: a new node moves both `L_Z` and `U_Z`,
//!   a later event on a known node moves only `U_Z`, a duplicate moves
//!   nothing. Each re-scan is one fused-kernel combo pass with the
//!   exact comparison cost of [`Evaluator::eval_all_proxy_fused`].
//!
//! # Settle rules
//!
//! Under per-process monotone arrival (positions never decrease on a
//! process — the order every execution linearization satisfies), the
//! proxies evolve in a disciplined way:
//!
//! * `L_Z` grows **only by new nodes**; a member on a known node is
//!   never displaced (the first arrival on a node is its `lo`).
//! * `U_Z` members are displaced only by **later events on the same
//!   node**, so a displaced `a` always satisfies `a ≺ a'`.
//!
//! Two transfer lemmas follow for the atom `a ≺ b`: a *negative*
//! witness `¬(a ≺ b)` survives displacement of `a` (if `a' ≺ b` then
//! `a ≺ a' ≺ b`, contradiction), and a *positive* witness `a ≺ b`
//! survives displacement of `b`. With `xc`/`yc` = closed flags,
//! `xnc`/`ync` = "no new nodes can appear" (closed, or every declared
//! node has arrived), `xfix = X̂=L ? xnc : xc` ("the X̂ proxy is
//! frozen"), `yfix` dually, this yields per Table-1 bit:
//!
//! | bit      | settles TRUE when           | settles FALSE when        |
//! |----------|-----------------------------|---------------------------|
//! | R1, R1'  | `now ∧ xfix ∧ yfix`         | `¬now ∧ (Ŷ=L ∨ yc)`       |
//! | R2, R2'  | `now ∧ xfix`                | `¬now ∧ yfix`             |
//! | R3, R3'  | `now ∧ (X̂=L ∨ xc) ∧ yfix`   | `¬now ∧ xnc ∧ (Ŷ=L ∨ yc)` |
//! | R4, R4'  | `now ∧ (X̂=L ∨ xc)`          | `¬now ∧ xnc ∧ yfix`       |
//!
//! Soundness sketches: R2 true with `xfix` settles because each `a`'s
//! witness `b` survives (positive y-transfer) and no new `a` can
//! appear; R2 false settles on `yfix` alone because the falsifying `a`
//! transfers its negative witnesses to any displacing `a'`; R4 true
//! with `X̂=L` settles because an `L` member is never displaced and its
//! witness survives y-displacement; and so on. Every rule is verified
//! empirically by the prefix-differential tests below and by the
//! harness in `synchrel-monitor::differential`.
//!
//! # Lattice pruning
//!
//! [`crate::hierarchy`] is applied in both directions inside each
//! combo (the implications hold for any fixed pair of non-empty
//! events): a bit settling **true** marks every implied bit settled
//! true without evaluation; a bit settling **false** kills every
//! dominator (`b ⟹ r` and `r` false forever means `b` false forever).
//! Propagation composes with the direct rules — whichever fires first
//! retires the bit, and a combo with all eight bits settled is dropped
//! from future scans entirely.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::execution::{EventId, Execution};
use crate::hierarchy;
use crate::linear::{Evaluator, EventSummary};
use crate::nonatomic::NonatomicEvent;
use crate::proxy_relations::{Proxy, ProxySummary, RelationSet};
use crate::relations::Relation;

/// Implication masks in `Relation::ALL` bit order.
struct Masks {
    /// `true_mask[r]`: bits implied by `r` (settle true with it).
    true_mask: [u8; 8],
    /// `false_mask[r]`: bits that imply `r` (settle false with it).
    false_mask: [u8; 8],
}

fn masks() -> &'static Masks {
    static MASKS: OnceLock<Masks> = OnceLock::new();
    MASKS.get_or_init(|| {
        let mut m = Masks {
            true_mask: [0; 8],
            false_mask: [0; 8],
        };
        for (ai, a) in Relation::ALL.into_iter().enumerate() {
            for (bi, b) in Relation::ALL.into_iter().enumerate() {
                if hierarchy::implies(a, b) {
                    m.true_mask[ai] |= 1 << bi;
                    m.false_mask[bi] |= 1 << ai;
                }
            }
        }
        m
    })
}

/// The proxies of combo `c` in [`crate::proxy_relations::ProxyRelation::index`]
/// order: `c = xp·2 + yp`.
fn combo_proxies(combo: usize) -> (Proxy, Proxy) {
    let xp = if combo / 2 == 0 { Proxy::L } else { Proxy::U };
    let yp = if combo.is_multiple_of(2) {
        Proxy::L
    } else {
        Proxy::U
    };
    (xp, yp)
}

/// One fused-kernel combo pass (the exact predicate code and
/// comparison accounting of [`Evaluator::eval_all_proxy_fused`],
/// restricted to a single proxy combination). Returns the eight
/// Table-1 verdict bits and the comparisons spent.
fn scan_combo(ex: &EventSummary, ey: &EventSummary) -> (u8, u64) {
    let nx = ex.node_set();
    let ny = ey.node_set();
    let x_min = nx.len() <= ny.len();

    let (ex_hi, ex_c3, ex_c4) = (ex.hi_row(), ex.c3_row(), ex.c4_row());
    let (ey_lo, ey_c1, ey_c2) = (ey.lo_row(), ey.c1_row(), ey.c2_row());

    let mut r1 = true;
    let mut r2 = true;
    let mut r2p = false;
    let mut r3 = false;
    let mut r3p = true;
    let mut r4 = false;
    let mut comparisons = 0u64;

    if x_min {
        for &i in nx {
            r1 &= ey_c1[i] >= ex_hi[i];
            r2 &= ey_c2[i] >= ex_hi[i];
            r3 |= ey_c1[i] >= ex_c3[i];
            r4 |= ey_c2[i] >= ex_c3[i];
        }
        comparisons += 4 * nx.len() as u64;
        for &j in ny {
            r2p |= ey_c2[j] >= ex_c4[j];
            r3p &= ey_lo[j] >= ex_c3[j];
        }
        comparisons += 2 * ny.len() as u64;
    } else {
        for &i in nx {
            r2 &= ey_c2[i] >= ex_hi[i];
            r3 |= ey_c1[i] >= ex_c3[i];
        }
        comparisons += 2 * nx.len() as u64;
        for &j in ny {
            r1 &= ey_lo[j] >= ex_c4[j];
            r2p |= ey_c2[j] >= ex_c4[j];
            r3p &= ey_lo[j] >= ex_c3[j];
            r4 |= ey_c2[j] >= ex_c3[j];
        }
        comparisons += 4 * ny.len() as u64;
    }

    let bits = (r1 as u8)
        | (r1 as u8) << 1
        | (r2 as u8) << 2
        | (r2p as u8) << 3
        | (r3 as u8) << 4
        | (r3p as u8) << 5
        | (r4 as u8) << 6
        | (r4 as u8) << 7;
    (bits, comparisons)
}

/// Settlement-relevant facts about one interval.
#[derive(Clone, Copy)]
struct Flags {
    /// Closed: no arrival will ever touch it again.
    c: bool,
    /// Node-complete: no *new node* can appear (closed, or every
    /// declared node has arrived — `L` is frozen from here on).
    nc: bool,
}

/// Verdict state of one ordered pair: 4 combos × 8 bits, in
/// [`RelationSet`] bit layout.
#[derive(Clone, Copy, Default)]
struct DirState {
    /// Live verdict of every bit for the arrived prefix.
    current: u32,
    /// Bits whose verdict can never change again.
    settled: u32,
    /// Comparisons charged to this direction.
    comparisons: u64,
}

impl DirState {
    fn combo_open(&self, combo: usize) -> bool {
        (self.settled >> (combo * 8)) as u8 != 0xff
    }
}

/// State of one unordered interval pair `{x, y}` with `x < y`.
struct PairState {
    /// Direction `(x as X, y as Y)`.
    fwd: DirState,
    /// Direction `(y as X, x as Y)`.
    rev: DirState,
}

impl PairState {
    fn fully_settled(&self) -> bool {
        self.fwd.settled == u32::MAX && self.rev.settled == u32::MAX
    }
}

struct IntervalState {
    /// Per-process first arrived position (0 = no member yet).
    lo: Vec<u32>,
    /// Per-process last arrived position (0 = no member yet).
    hi: Vec<u32>,
    /// Declared node membership, when known up front.
    declared: Option<Vec<bool>>,
    declared_count: usize,
    nodes_seen: usize,
    closed: bool,
    /// Lazily rebuilt proxy summaries of the arrived prefix.
    summary: Option<Arc<ProxySummary>>,
    /// Inverted index entry: intervals this one still shares an
    /// unsettled pair with.
    partners: Vec<u32>,
}

impl IntervalState {
    fn is_empty(&self) -> bool {
        self.nodes_seen == 0
    }

    fn flags(&self) -> Flags {
        let nc = self.closed || (self.declared.is_some() && self.nodes_seen == self.declared_count);
        Flags { c: self.closed, nc }
    }
}

/// Apply the settle rules plus lattice propagation to one combo of one
/// direction. Costs zero comparisons — it only inspects already-live
/// verdict bits and the interval flags.
fn settle_combo(dir: &mut DirState, combo: usize, fx: Flags, fy: Flags) {
    let s = combo * 8;
    let open = !((dir.settled >> s) as u8);
    if open == 0 {
        return;
    }
    let bits = (dir.current >> s) as u8;
    let xp_u = combo >= 2;
    let yp_u = combo % 2 == 1;
    let xfix = if xp_u { fx.c } else { fx.nc };
    let yfix = if yp_u { fy.c } else { fy.nc };
    let x_lc = !xp_u || fx.c;
    let y_lc = !yp_u || fy.c;

    let mut rule = 0u8;
    for r in 0..8 {
        if open & (1 << r) == 0 {
            continue;
        }
        let now = bits & (1 << r) != 0;
        let done = match r {
            0 | 1 => {
                if now {
                    xfix && yfix
                } else {
                    y_lc
                }
            }
            2 | 3 => {
                if now {
                    xfix
                } else {
                    yfix
                }
            }
            4 | 5 => {
                if now {
                    x_lc && yfix
                } else {
                    fx.nc && y_lc
                }
            }
            _ => {
                if now {
                    x_lc
                } else {
                    fx.nc && yfix
                }
            }
        };
        if done {
            rule |= 1 << r;
        }
    }
    if rule == 0 {
        return;
    }

    // Lattice propagation (hierarchy::IMPLIES, both directions): a bit
    // settled true settles everything it implies; a bit settled false
    // kills every dominator. The propagated bits freeze at their live
    // value, which the implication guarantees agrees.
    let m = masks();
    let mut settled_now = rule;
    for r in 0..8 {
        if rule & (1 << r) == 0 {
            continue;
        }
        if bits & (1 << r) != 0 {
            debug_assert_eq!(
                m.true_mask[r] & !bits,
                0,
                "implied bit live-false while implier true"
            );
            settled_now |= m.true_mask[r];
        } else {
            debug_assert_eq!(
                m.false_mask[r] & bits,
                0,
                "dominator live-true while dominated false"
            );
            settled_now |= m.false_mask[r];
        }
    }
    dir.settled |= (settled_now as u32) << s;
}

/// Re-scan one open combo of one direction and settle what it can.
/// Returns the comparisons spent (0 when the combo was already fully
/// settled).
fn rescan_combo(
    dir: &mut DirState,
    combo: usize,
    sx: &ProxySummary,
    sy: &ProxySummary,
    fx: Flags,
    fy: Flags,
) -> u64 {
    if !dir.combo_open(combo) {
        return 0;
    }
    let (xp, yp) = combo_proxies(combo);
    let (bits, cost) = scan_combo(sx.get(xp), sy.get(yp));
    let s = combo * 8;
    debug_assert_eq!(
        (u32::from(bits) << s ^ dir.current) & dir.settled & (0xffu32 << s),
        0,
        "settled verdict changed under it"
    );
    dir.current = (dir.current & !(0xffu32 << s)) | (u32::from(bits) << s);
    dir.comparisons += cost;
    settle_combo(dir, combo, fx, fy);
    cost
}

/// Stateful all-pairs Problem-4 detector: O(delta) maintenance of the
/// 32-relation verdicts under a stream of arriving events.
///
/// Intervals are registered with [`IncrementalDetector::add_interval`]
/// (or [`add_interval_declared`](IncrementalDetector::add_interval_declared)
/// when the node set is known up front, which lets `L`-proxy verdicts
/// settle before the interval closes), fed with
/// [`arrive`](IncrementalDetector::arrive) in any order that keeps
/// per-process positions non-decreasing, and retired with
/// [`close`](IncrementalDetector::close). At any point
/// [`relations`](IncrementalDetector::relations) reports the verdict of
/// the arrived prefix — byte-identical to running
/// [`Evaluator::eval_all_proxy_fused`] on the prefix-restricted
/// intervals.
pub struct IncrementalDetector<'a> {
    exec: &'a Execution,
    eval: Evaluator<'a>,
    intervals: Vec<IntervalState>,
    pairs: Vec<PairState>,
    pair_index: HashMap<(u32, u32), u32>,
    /// Per-process monotone-arrival guard.
    last_pos: Vec<u32>,
    combo_scans: u64,
    comparisons: u64,
    open_pairs: usize,
}

impl<'a> IncrementalDetector<'a> {
    /// An empty detector over `exec`.
    pub fn new(exec: &'a Execution) -> Self {
        IncrementalDetector {
            exec,
            eval: Evaluator::new(exec),
            intervals: Vec::new(),
            pairs: Vec::new(),
            pair_index: HashMap::new(),
            last_pos: vec![0; exec.num_processes()],
            combo_scans: 0,
            comparisons: 0,
            open_pairs: 0,
        }
    }

    /// Register an interval with an unknown node set. `L`-proxy
    /// verdicts can only settle once it closes.
    pub fn add_interval(&mut self) -> usize {
        self.push_interval(None)
    }

    /// Register an interval whose node set is declared up front: once
    /// every declared node has arrived the interval is *node-complete*
    /// and its `L` proxy is frozen, letting `(L, ·)`-combo verdicts
    /// settle long before the interval closes.
    pub fn add_interval_declared(&mut self, nodes: &[usize]) -> usize {
        let n = self.exec.num_processes();
        let mut d = vec![false; n];
        for &p in nodes {
            assert!(p < n, "declared node {p} out of range");
            d[p] = true;
        }
        assert!(d.iter().any(|&b| b), "declared node set must be non-empty");
        self.push_interval(Some(d))
    }

    fn push_interval(&mut self, declared: Option<Vec<bool>>) -> usize {
        let n = self.exec.num_processes();
        let declared_count = declared
            .as_ref()
            .map(|d| d.iter().filter(|&&b| b).count())
            .unwrap_or(0);
        self.intervals.push(IntervalState {
            lo: vec![0; n],
            hi: vec![0; n],
            declared,
            declared_count,
            nodes_seen: 0,
            closed: false,
            summary: None,
            partners: Vec::new(),
        });
        self.intervals.len() - 1
    }

    /// Number of registered intervals.
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Has interval `i` received any member yet?
    pub fn interval_is_empty(&self, i: usize) -> bool {
        self.intervals[i].is_empty()
    }

    /// Number of distinct nodes seen by interval `i` so far.
    pub fn interval_node_count(&self, i: usize) -> usize {
        self.intervals[i].nodes_seen
    }

    /// Total comparisons spent across all combo re-scans.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Total fused combo passes executed (the O(delta) metric: a batch
    /// re-run per event would execute `8 · pairs` of these each time).
    pub fn combo_scans(&self) -> u64 {
        self.combo_scans
    }

    /// Pairs with at least one unsettled verdict bit.
    pub fn open_pairs(&self) -> usize {
        self.open_pairs
    }

    /// Deliver an application event to interval `interval`.
    ///
    /// Arrivals must keep per-process positions non-decreasing across
    /// the whole stream (any execution linearization does). Duplicate
    /// deliveries are no-ops.
    ///
    /// # Panics
    ///
    /// On out-of-order arrival, a dummy event, a closed or unknown
    /// interval, or (for declared intervals) an undeclared node.
    pub fn arrive(&mut self, interval: usize, e: EventId) {
        let p = e.process.idx();
        let pos = e.index;
        assert!(p < self.last_pos.len(), "process {p} out of range");
        assert!(
            pos >= 1 && pos <= self.exec.app_len(e.process),
            "arrivals must be application events"
        );
        assert!(
            pos >= self.last_pos[p],
            "per-process arrival positions must be non-decreasing"
        );
        self.last_pos[p] = pos;

        let st = &mut self.intervals[interval];
        assert!(!st.closed, "arrival on closed interval {interval}");
        let new_node = st.lo[p] == 0;
        if new_node {
            if let Some(d) = st.declared.as_ref() {
                assert!(d[p], "arrival on undeclared node {p}");
            }
        } else if pos == st.hi[p] {
            return; // duplicate delivery
        }
        let was_empty = st.is_empty();
        if new_node {
            st.lo[p] = pos;
            st.nodes_seen += 1;
        }
        st.hi[p] = pos;
        st.summary = None;

        if was_empty {
            self.link_new(interval);
        } else {
            // A new node moves both proxies; a later event on a known
            // node moves only U.
            self.touch(interval, new_node, true);
        }
    }

    /// Close interval `interval`: no further arrivals. Settlement is
    /// refreshed on every open partner pair at zero comparison cost
    /// (closing changes flags, not verdicts). Idempotent.
    pub fn close(&mut self, interval: usize) {
        if self.intervals[interval].closed {
            return;
        }
        self.intervals[interval].closed = true;
        if self.intervals[interval].is_empty() {
            return;
        }
        let partners = self.intervals[interval].partners.clone();
        let fi = self.intervals[interval].flags();
        let mut unlink = Vec::new();
        for &j in &partners {
            let j = j as usize;
            let fj = self.intervals[j].flags();
            let (a, b) = ordered(interval, j);
            let (fa, fb) = if a == interval { (fi, fj) } else { (fj, fi) };
            let idx = self.pair_index[&(a as u32, b as u32)] as usize;
            let pair = &mut self.pairs[idx];
            for combo in 0..4 {
                settle_combo(&mut pair.fwd, combo, fa, fb);
                settle_combo(&mut pair.rev, combo, fb, fa);
            }
            if pair.fully_settled() {
                unlink.push(j);
            }
        }
        for j in unlink {
            self.unlink(interval, j);
        }
    }

    /// The 32-relation verdict of ordered pair `(x, y)` for the
    /// arrived prefixes, or `None` when `x == y` or either interval is
    /// still empty.
    pub fn relations(&self, x: usize, y: usize) -> Option<RelationSet> {
        self.dir(x, y).map(|d| RelationSet(d.current))
    }

    /// Comparisons charged to ordered pair `(x, y)` so far.
    pub fn pair_comparisons(&self, x: usize, y: usize) -> u64 {
        self.dir(x, y).map_or(0, |d| d.comparisons)
    }

    /// Settled-bit mask of ordered pair `(x, y)` ([`RelationSet`] bit
    /// layout; `0` while unlinked).
    pub fn settled_mask(&self, x: usize, y: usize) -> u32 {
        self.dir(x, y).map_or(0, |d| d.settled)
    }

    /// Is every bit of both directions of `{x, y}` settled?
    pub fn pair_settled(&self, x: usize, y: usize) -> bool {
        let (a, b) = ordered(x, y);
        self.pair_index
            .get(&(a as u32, b as u32))
            .is_some_and(|&i| self.pairs[i as usize].fully_settled())
    }

    fn dir(&self, x: usize, y: usize) -> Option<&DirState> {
        if x == y {
            return None;
        }
        let (a, b) = ordered(x, y);
        let idx = *self.pair_index.get(&(a as u32, b as u32))?;
        let pair = &self.pairs[idx as usize];
        Some(if x == a { &pair.fwd } else { &pair.rev })
    }

    /// Proxy summaries of the arrived prefix of interval `i`, rebuilt
    /// from the per-node extremes when stale.
    fn summary_of(&mut self, i: usize) -> Arc<ProxySummary> {
        if let Some(s) = &self.intervals[i].summary {
            return s.clone();
        }
        let st = &self.intervals[i];
        debug_assert!(!st.is_empty());
        let mut members = Vec::with_capacity(2 * st.nodes_seen);
        for p in 0..st.lo.len() {
            if st.lo[p] != 0 {
                members.push(EventId::new(p as u32, st.lo[p]));
                if st.hi[p] != st.lo[p] {
                    members.push(EventId::new(p as u32, st.hi[p]));
                }
            }
        }
        let ev = NonatomicEvent::new(self.exec, members).expect("extremes are valid app events");
        let s = Arc::new(self.eval.summarize_proxies(&ev));
        self.intervals[i].summary = Some(s.clone());
        s
    }

    /// First arrival: pair `i` with every other non-empty interval,
    /// scanning all four combos of both directions once.
    fn link_new(&mut self, i: usize) {
        let others: Vec<usize> = (0..self.intervals.len())
            .filter(|&j| j != i && !self.intervals[j].is_empty())
            .collect();
        let si = self.summary_of(i);
        let fi = self.intervals[i].flags();
        for j in others {
            let sj = self.summary_of(j);
            let fj = self.intervals[j].flags();
            let (a, b) = ordered(i, j);
            let ((sa, fa), (sb, fb)) = if a == i {
                ((&si, fi), (&sj, fj))
            } else {
                ((&sj, fj), (&si, fi))
            };
            let mut pair = PairState {
                fwd: DirState::default(),
                rev: DirState::default(),
            };
            let mut cost = 0;
            for combo in 0..4 {
                cost += rescan_combo(&mut pair.fwd, combo, sa, sb, fa, fb);
                cost += rescan_combo(&mut pair.rev, combo, sb, sa, fb, fa);
            }
            self.combo_scans += 8;
            self.comparisons += cost;
            let open = !pair.fully_settled();
            let idx = self.pairs.len() as u32;
            self.pairs.push(pair);
            self.pair_index.insert((a as u32, b as u32), idx);
            if open {
                self.open_pairs += 1;
                self.intervals[i].partners.push(j as u32);
                self.intervals[j].partners.push(i as u32);
            }
        }
    }

    /// Subsequent arrival at `i`: re-scan, for each open partner pair,
    /// only the combos whose `i`-side proxy changed.
    fn touch(&mut self, i: usize, l_changed: bool, u_changed: bool) {
        if !l_changed && !u_changed {
            return;
        }
        let partners = self.intervals[i].partners.clone();
        if partners.is_empty() {
            return;
        }
        let si = self.summary_of(i);
        let fi = self.intervals[i].flags();
        let mut unlink = Vec::new();
        for &j in &partners {
            let j = j as usize;
            let sj = self.summary_of(j);
            let fj = self.intervals[j].flags();
            let (a, b) = ordered(i, j);
            let ((sa, fa), (sb, fb)) = if a == i {
                ((&si, fi), (&sj, fj))
            } else {
                ((&sj, fj), (&si, fi))
            };
            let idx = self.pair_index[&(a as u32, b as u32)] as usize;
            let pair = &mut self.pairs[idx];
            let mut cost = 0;
            let mut scans = 0;
            for combo in 0..4 {
                let (xp, yp) = combo_proxies(combo);
                // In fwd, `i` is the X operand iff a == i.
                let i_moves_fwd = if a == i {
                    proxy_moved(xp, l_changed, u_changed)
                } else {
                    proxy_moved(yp, l_changed, u_changed)
                };
                let i_moves_rev = if a == i {
                    proxy_moved(yp, l_changed, u_changed)
                } else {
                    proxy_moved(xp, l_changed, u_changed)
                };
                if i_moves_fwd && pair.fwd.combo_open(combo) {
                    cost += rescan_combo(&mut pair.fwd, combo, sa, sb, fa, fb);
                    scans += 1;
                }
                if i_moves_rev && pair.rev.combo_open(combo) {
                    cost += rescan_combo(&mut pair.rev, combo, sb, sa, fb, fa);
                    scans += 1;
                }
            }
            self.combo_scans += scans;
            self.comparisons += cost;
            if pair.fully_settled() {
                unlink.push(j);
            }
        }
        for j in unlink {
            self.unlink(i, j);
        }
    }

    fn unlink(&mut self, i: usize, j: usize) {
        self.intervals[i].partners.retain(|&k| k as usize != j);
        self.intervals[j].partners.retain(|&k| k as usize != i);
        self.open_pairs -= 1;
    }

    /// Drive a full replay: register `events` (with declared node
    /// sets), deliver every application event of the execution's
    /// linearization to the intervals containing it, then close all.
    /// The result answers Problem 4 for the complete intervals — with
    /// the per-pair verdicts byte-identical to the batch sweeps — while
    /// having spent only the incremental touch sets along the way.
    pub fn replay(exec: &'a Execution, events: &[NonatomicEvent]) -> IncrementalDetector<'a> {
        let mut det = IncrementalDetector::new(exec);
        let mut membership: HashMap<EventId, Vec<u32>> = HashMap::new();
        for (k, ev) in events.iter().enumerate() {
            det.add_interval_declared(ev.node_set());
            for e in ev.events() {
                membership.entry(e).or_default().push(k as u32);
            }
        }
        for &e in exec.app_order() {
            if let Some(list) = membership.get(&e) {
                for &k in list {
                    det.arrive(k as usize, e);
                }
            }
        }
        for k in 0..events.len() {
            det.close(k);
        }
        det
    }
}

fn ordered(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

fn proxy_moved(p: Proxy, l_changed: bool, u_changed: bool) -> bool {
    match p {
        Proxy::L => l_changed,
        Proxy::U => u_changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{ExecutionBuilder, MsgToken};

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Deterministic random execution: `steps` events spread over
    /// `procs` processes with sends/receives mixed in.
    fn random_exec(seed: u64, procs: usize, steps: usize) -> Execution {
        let mut b = ExecutionBuilder::new(procs);
        let mut pending: Vec<Vec<MsgToken>> = vec![Vec::new(); procs];
        for k in 0..steps {
            let r = splitmix(seed.wrapping_mul(0x9E37).wrapping_add(k as u64));
            let p = (r % procs as u64) as usize;
            match (r >> 8) % 3 {
                0 if procs > 1 => {
                    let mut to = ((r >> 16) % (procs as u64 - 1)) as usize;
                    if to >= p {
                        to += 1;
                    }
                    let (_, tok) = b.send(p);
                    pending[to].push(tok);
                }
                1 if !pending[p].is_empty() => {
                    let tok = pending[p].remove(0);
                    b.recv(p, tok).expect("fresh token");
                }
                _ => {
                    b.internal(p);
                }
            }
        }
        b.build().expect("acyclic by construction")
    }

    /// `count` random non-empty member sets over the app events.
    fn random_intervals(exec: &Execution, seed: u64, count: usize) -> Vec<NonatomicEvent> {
        let procs = exec.num_processes();
        (0..count)
            .map(|k| {
                let mut members = Vec::new();
                for p in 0..procs {
                    let len = exec.app_len(crate::execution::ProcessId(p as u32));
                    if len == 0 {
                        continue;
                    }
                    let r = splitmix(seed ^ (k as u64) << 20 ^ (p as u64) << 8);
                    if r.is_multiple_of(2) {
                        members.push(EventId::new(p as u32, (r >> 8) as u32 % len + 1));
                        members.push(EventId::new(p as u32, (r >> 40) as u32 % len + 1));
                    }
                }
                if members.is_empty() {
                    for p in 0..procs {
                        let len = exec.app_len(crate::execution::ProcessId(p as u32));
                        if len > 0 {
                            members.push(EventId::new(
                                p as u32,
                                (splitmix(seed ^ k as u64) as u32) % len + 1,
                            ));
                            break;
                        }
                    }
                }
                NonatomicEvent::new(exec, members).expect("valid members")
            })
            .collect()
    }

    /// Replay a seeded case event by event and assert, after **every**
    /// arrival, that each live pair verdict is byte-identical to the
    /// fused kernel on the prefix-restricted intervals, that settled
    /// masks only grow, and that settled bits never change value.
    fn check_prefix_equivalence(seed: u64, close_eagerly: bool) {
        let procs = 2 + (splitmix(seed * 3 + 1) % 3) as usize;
        let steps = procs * (6 + (splitmix(seed * 3 + 2) % 5) as usize);
        let exec = random_exec(seed, procs, steps);
        let count = 3 + (splitmix(seed * 3 + 3) % 2) as usize;
        let events = random_intervals(&exec, seed, count);

        let eval = Evaluator::new(&exec);
        let mut det = IncrementalDetector::new(&exec);
        let mut membership: HashMap<EventId, Vec<usize>> = HashMap::new();
        let mut remaining: Vec<usize> = vec![0; count];
        for (k, ev) in events.iter().enumerate() {
            det.add_interval_declared(ev.node_set());
            for e in ev.events() {
                membership.entry(e).or_default().push(k);
                remaining[k] += 1;
            }
        }
        let mut arrived: Vec<Vec<EventId>> = vec![Vec::new(); count];
        let mut prev: HashMap<(usize, usize), (u32, u32)> = HashMap::new();
        for &e in exec.app_order() {
            let Some(holders) = membership.get(&e) else {
                continue;
            };
            for &k in holders {
                det.arrive(k, e);
                arrived[k].push(e);
                remaining[k] -= 1;
                if close_eagerly && remaining[k] == 0 {
                    det.close(k);
                }
            }
            for x in 0..count {
                for y in 0..count {
                    if x == y || arrived[x].is_empty() || arrived[y].is_empty() {
                        continue;
                    }
                    let px = NonatomicEvent::new(&exec, arrived[x].iter().copied()).unwrap();
                    let py = NonatomicEvent::new(&exec, arrived[y].iter().copied()).unwrap();
                    let sx = eval.summarize_proxies(&px);
                    let sy = eval.summarize_proxies(&py);
                    let (want, _) = eval.eval_all_proxy_fused(&sx, &sy);
                    let got = det.relations(x, y).expect("pair linked");
                    assert_eq!(got, want, "seed {seed} pair ({x},{y}) diverges at prefix");
                    let s = det.settled_mask(x, y);
                    let (ps, pv) = prev.get(&(x, y)).copied().unwrap_or((0, 0));
                    assert_eq!(ps & !s, 0, "seed {seed}: settled mask shrank");
                    assert_eq!(
                        (got.0 ^ pv) & ps,
                        0,
                        "seed {seed}: settled verdict changed value"
                    );
                    prev.insert((x, y), (s, got.0));
                }
            }
        }
        for k in 0..count {
            det.close(k);
        }
        let mut total = 0;
        for x in 0..count {
            for y in 0..count {
                if x == y {
                    continue;
                }
                let sx = eval.summarize_proxies(&events[x]);
                let sy = eval.summarize_proxies(&events[y]);
                let (want, _) = eval.eval_all_proxy_fused(&sx, &sy);
                assert_eq!(det.relations(x, y), Some(want), "seed {seed} final");
                assert!(det.pair_settled(x, y), "seed {seed}: pair open after close");
                assert_eq!(det.settled_mask(x, y), u32::MAX);
                total += det.pair_comparisons(x, y);
            }
        }
        assert_eq!(total, det.comparisons(), "per-pair comparison accounting");
        assert_eq!(det.open_pairs(), 0);
    }

    #[test]
    fn prefix_equivalence_close_at_end() {
        for seed in 0..40 {
            check_prefix_equivalence(seed, false);
        }
    }

    #[test]
    fn prefix_equivalence_close_eagerly() {
        for seed in 0..40 {
            check_prefix_equivalence(seed, true);
        }
    }

    #[test]
    fn replay_matches_fused_batch() {
        for seed in 100..120 {
            let exec = random_exec(seed, 3, 24);
            let events = random_intervals(&exec, seed, 4);
            let det = IncrementalDetector::replay(&exec, &events);
            let eval = Evaluator::new(&exec);
            for x in 0..events.len() {
                for y in 0..events.len() {
                    if x == y {
                        continue;
                    }
                    let sx = eval.summarize_proxies(&events[x]);
                    let sy = eval.summarize_proxies(&events[y]);
                    let (want, _) = eval.eval_all_proxy_fused(&sx, &sy);
                    assert_eq!(det.relations(x, y), Some(want), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn node_complete_settles_ll_combo_before_close() {
        let mut b = ExecutionBuilder::new(2);
        for _ in 0..3 {
            b.internal(0);
            b.internal(1);
        }
        let exec = b.build().unwrap();
        let mut det = IncrementalDetector::new(&exec);
        let x = det.add_interval_declared(&[0]);
        let y = det.add_interval_declared(&[1]);
        det.arrive(x, EventId::new(0, 1));
        det.arrive(y, EventId::new(1, 1));
        det.arrive(x, EventId::new(0, 2));
        det.arrive(y, EventId::new(1, 2));
        // Both node-complete, neither closed: the (L, L) combo is fully
        // settled (its verdicts can't move), the (U, U) combo is not.
        let s = det.settled_mask(x, y);
        assert_eq!(s & 0xff, 0xff, "(L,L) combo should be settled");
        assert_ne!(s >> 24, 0xff, "(U,U) combo cannot settle while open");
        assert!(!det.pair_settled(x, y));
        det.close(x);
        det.close(y);
        assert!(det.pair_settled(x, y));
    }

    #[test]
    fn duplicate_arrival_is_noop() {
        let mut b = ExecutionBuilder::new(2);
        b.internal(0);
        b.internal(1);
        let exec = b.build().unwrap();
        let mut det = IncrementalDetector::new(&exec);
        let x = det.add_interval();
        let y = det.add_interval();
        det.arrive(x, EventId::new(0, 1));
        det.arrive(y, EventId::new(1, 1));
        let scans = det.combo_scans();
        let rels = det.relations(x, y);
        det.arrive(y, EventId::new(1, 1));
        assert_eq!(det.combo_scans(), scans, "duplicate must not rescan");
        assert_eq!(det.relations(x, y), rels);
    }

    #[test]
    fn close_is_idempotent_and_total() {
        let mut b = ExecutionBuilder::new(2);
        let (_, m) = b.send(0);
        b.recv(1, m).unwrap();
        let exec = b.build().unwrap();
        let mut det = IncrementalDetector::new(&exec);
        let x = det.add_interval();
        let y = det.add_interval();
        det.arrive(x, EventId::new(0, 1));
        det.arrive(y, EventId::new(1, 1));
        det.close(x);
        det.close(x);
        det.close(y);
        assert!(det.pair_settled(x, y));
        // x = {send}, y = {recv}: everything holds.
        assert_eq!(det.relations(x, y), Some(RelationSet(u32::MAX)));
        assert_eq!(det.open_pairs(), 0);
    }

    #[test]
    fn implication_masks_match_hierarchy() {
        let m = masks();
        // R1 (bit 0) implies everything; everything implies R4 (bit 6).
        assert_eq!(m.true_mask[0], 0xff);
        assert_eq!(m.false_mask[6], 0xff);
        // R4 implies only itself and its twin; only R1/R1' imply R1.
        assert_eq!(m.true_mask[6], 0b1100_0000);
        assert_eq!(m.false_mask[0], 0b0000_0011);
        for r in 0..8 {
            assert_ne!(m.true_mask[r] & (1 << r), 0, "reflexive");
            assert_ne!(m.false_mask[r] & (1 << r), 0, "reflexive");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_arrival_panics() {
        let mut b = ExecutionBuilder::new(1);
        b.internal(0);
        b.internal(0);
        let exec = b.build().unwrap();
        let mut det = IncrementalDetector::new(&exec);
        let x = det.add_interval();
        det.arrive(x, EventId::new(0, 2));
        det.arrive(x, EventId::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "closed interval")]
    fn arrival_after_close_panics() {
        let mut b = ExecutionBuilder::new(1);
        b.internal(0);
        let exec = b.build().unwrap();
        let mut det = IncrementalDetector::new(&exec);
        let x = det.add_interval();
        det.close(x);
        det.arrive(x, EventId::new(0, 1));
    }

    #[test]
    fn single_interval_has_no_pairs() {
        let mut b = ExecutionBuilder::new(1);
        b.internal(0);
        let exec = b.build().unwrap();
        let det = IncrementalDetector::replay(
            &exec,
            &[NonatomicEvent::new(&exec, [EventId::new(0, 1)]).unwrap()],
        );
        assert_eq!(det.relations(0, 0), None);
        assert_eq!(det.comparisons(), 0);
    }
}
