//! The 32-relation family `ℛ` between nonatomic poset events.
//!
//! Causality relations between nonatomic events are specified between
//! their **proxies**: the begin proxy `L_X` and the end proxy `U_X`
//! (paper §1). With 2 proxy choices for `X`, 2 for `Y`, and the 8
//! relations of Table 1, this yields the 32 relations
//! `r(X, Y) ≡ R(X̂, Ŷ)` of `ℛ`.
//!
//! Because proxies are themselves nonatomic poset events (with at most
//! one event per node), each of the 32 relations is evaluated by the same
//! linear-time machinery of [`crate::linear`], applied to proxy
//! summaries. [`ProxySummary`] precomputes the two Definition-2 proxy
//! summaries of an event once (Key Idea 1); every subsequent relation
//! query is then linear in the node counts.

use std::fmt;

use serde::{Deserialize, Serialize};
use synchrel_obs::{Meter, NoopMeter};

use crate::error::Result;
use crate::execution::Execution;
use crate::linear::{ComparisonCount, Evaluator, EventSummary};
use crate::nonatomic::{NonatomicEvent, ProxyDefinition};
use crate::relations::{naive, Relation};
use crate::timestamp::{arena_seg, SummaryArena};

/// A proxy choice: the beginning (`L`) or the end (`U`) of a nonatomic
/// event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Proxy {
    /// The begin proxy `L_X`.
    L,
    /// The end proxy `U_X`.
    U,
}

impl Proxy {
    /// Both proxies.
    pub const ALL: [Proxy; 2] = [Proxy::L, Proxy::U];
}

impl fmt::Display for Proxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proxy::L => "L",
            Proxy::U => "U",
        })
    }
}

/// One of the 32 relations of `ℛ`: `R(X̂, Ŷ)` for a Table-1 relation `R`
/// and proxy choices `X̂ ∈ {L_X, U_X}`, `Ŷ ∈ {L_Y, U_Y}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProxyRelation {
    /// Proxy chosen for `X`.
    pub x_proxy: Proxy,
    /// Proxy chosen for `Y`.
    pub y_proxy: Proxy,
    /// The Table-1 relation applied to the proxies.
    pub rel: Relation,
}

impl ProxyRelation {
    /// Number of relations in `ℛ`.
    pub const COUNT: usize = 32;

    /// Construct.
    pub fn new(rel: Relation, x_proxy: Proxy, y_proxy: Proxy) -> Self {
        ProxyRelation {
            x_proxy,
            y_proxy,
            rel,
        }
    }

    /// All 32 relations, ordered by `(x_proxy, y_proxy, relation)`.
    pub fn all() -> impl Iterator<Item = ProxyRelation> {
        Proxy::ALL.into_iter().flat_map(|xp| {
            Proxy::ALL.into_iter().flat_map(move |yp| {
                Relation::ALL
                    .into_iter()
                    .map(move |rel| ProxyRelation::new(rel, xp, yp))
            })
        })
    }

    /// Stable index in `0..32`, matching the bit layout of
    /// [`RelationSet`].
    pub fn index(self) -> usize {
        let xp = match self.x_proxy {
            Proxy::L => 0,
            Proxy::U => 1,
        };
        let yp = match self.y_proxy {
            Proxy::L => 0,
            Proxy::U => 1,
        };
        let r = Relation::ALL
            .iter()
            .position(|&x| x == self.rel)
            .expect("relation in ALL");
        (xp * 2 + yp) * 8 + r
    }

    /// Inverse of [`ProxyRelation::index`].
    pub fn from_index(i: usize) -> ProxyRelation {
        assert!(i < Self::COUNT);
        let r = Relation::ALL[i % 8];
        let combo = i / 8;
        let xp = if combo / 2 == 0 { Proxy::L } else { Proxy::U };
        let yp = if combo.is_multiple_of(2) {
            Proxy::L
        } else {
            Proxy::U
        };
        ProxyRelation::new(r, xp, yp)
    }
}

impl fmt::Display for ProxyRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}_X, {}_Y)",
            self.rel.name(),
            self.x_proxy,
            self.y_proxy
        )
    }
}

/// A set of relations from `ℛ`, as a 32-bit mask indexed by
/// [`ProxyRelation::index`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationSet(pub u32);

impl RelationSet {
    /// The empty set.
    pub fn empty() -> Self {
        RelationSet(0)
    }

    /// Insert a relation.
    pub fn insert(&mut self, r: ProxyRelation) {
        self.0 |= 1 << r.index();
    }

    /// Membership test.
    pub fn contains(self, r: ProxyRelation) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Number of relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the member relations.
    pub fn iter(self) -> impl Iterator<Item = ProxyRelation> {
        (0..ProxyRelation::COUNT)
            .filter(move |&i| self.0 & (1 << i) != 0)
            .map(ProxyRelation::from_index)
    }
}

impl fmt::Debug for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelationSet({:#010x})", self.0)
    }
}

impl fmt::Display for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, r) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// The precomputed summaries of both Definition-2 proxies of a nonatomic
/// event: everything needed to answer any of the 32 relation queries in
/// linear time.
#[derive(Clone, Debug)]
pub struct ProxySummary {
    l: EventSummary,
    u: EventSummary,
}

impl ProxySummary {
    /// Summary of the requested proxy.
    pub fn get(&self, p: Proxy) -> &EventSummary {
        match p {
            Proxy::L => &self.l,
            Proxy::U => &self.u,
        }
    }

    /// Summary of `L_X`.
    pub fn lower(&self) -> &EventSummary {
        &self.l
    }

    /// Summary of `U_X`.
    pub fn upper(&self) -> &EventSummary {
        &self.u
    }
}

impl<'a> Evaluator<'a> {
    /// Precompute the proxy summaries of `x` (Definition-2 proxies).
    pub fn summarize_proxies(&self, x: &NonatomicEvent) -> ProxySummary {
        self.summarize_proxies_with(x, ProxyDefinition::PerNode)
            .expect("per-node proxies always exist")
    }

    /// Precompute proxy summaries under an explicit proxy definition.
    ///
    /// With [`ProxyDefinition::Global`] (Definition 3) the proxies are
    /// the global minimum/maximum of `x`, which may not exist —
    /// [`crate::error::Error::EmptyProxy`] is returned in that case.
    pub fn summarize_proxies_with(
        &self,
        x: &NonatomicEvent,
        def: ProxyDefinition,
    ) -> Result<ProxySummary> {
        let exec = self.execution();
        let l = x.proxy_lower(exec, def)?;
        let u = x.proxy_upper(exec, def)?;
        Ok(ProxySummary {
            l: self.summarize(&l),
            u: self.summarize(&u),
        })
    }

    /// Evaluate one relation of `ℛ` from proxy summaries, with its
    /// comparison count (Theorem 20 applied to the proxies).
    pub fn eval_proxy(
        &self,
        pr: ProxyRelation,
        sx: &ProxySummary,
        sy: &ProxySummary,
    ) -> ComparisonCount {
        self.eval_counted(pr.rel, sx.get(pr.x_proxy), sy.get(pr.y_proxy))
    }

    /// [`Evaluator::eval_proxy`] reporting to a [`Meter`]. The proxy
    /// combo aggregates into its base relation's slot, matching the
    /// per-relation rows of the paper's Table 2.
    #[inline]
    pub fn eval_proxy_with<M: Meter>(
        &self,
        pr: ProxyRelation,
        sx: &ProxySummary,
        sy: &ProxySummary,
        meter: &M,
    ) -> ComparisonCount {
        self.eval_counted_with(pr.rel, sx.get(pr.x_proxy), sy.get(pr.y_proxy), meter)
    }

    /// Evaluate all 32 relations; returns the set that holds and the
    /// total comparison count (Problem 4(ii) for one pair).
    ///
    /// This is the **unfused** path: 32 independent [`Evaluator::eval_proxy`]
    /// calls, each spending exactly its Theorem-20 comparison budget — the
    /// reference for the paper's complexity measurements. The production
    /// hot path is [`Evaluator::eval_all_proxy_fused`].
    pub fn eval_all_proxy(&self, sx: &ProxySummary, sy: &ProxySummary) -> (RelationSet, u64) {
        self.eval_all_proxy_with(sx, sy, &NoopMeter)
    }

    /// [`Evaluator::eval_all_proxy`] reporting to a [`Meter`]: each of
    /// the 32 relation evaluations is reported individually (with its
    /// Theorem-20 budgets), then the pair total.
    #[inline]
    pub fn eval_all_proxy_with<M: Meter>(
        &self,
        sx: &ProxySummary,
        sy: &ProxySummary,
        meter: &M,
    ) -> (RelationSet, u64) {
        let mut set = RelationSet::empty();
        let mut comparisons = 0;
        for pr in ProxyRelation::all() {
            let c = self.eval_proxy_with(pr, sx, sy, meter);
            if c.holds {
                set.insert(pr);
            }
            comparisons += c.comparisons;
        }
        if meter.enabled() {
            meter.on_pair(comparisons);
        }
        (set, comparisons)
    }

    /// Fused evaluation of all 32 relations: per proxy combination
    /// `(X̂, Ŷ)`, the six distinct cut predicates behind the eight
    /// Table-1 verdicts are computed in two node-restricted scans over
    /// adjacent summary rows, and the 8 `RelationSet` bits are derived
    /// from them. Verdict-equivalent to [`Evaluator::eval_all_proxy`]
    /// (same Auto scan sides), but shares work across relations:
    ///
    /// * R1 and R1' are one predicate (identical evaluation condition),
    ///   as are R4 and R4';
    /// * the `N_X` scan fuses R2 (`∪⇓Y ≥ hi_X`, ∀) with R3
    ///   (`∩⇓Y ≥ ∩⇑X`, ∃) — both read the same `ex` / `ey` rows;
    /// * the `N_Y` scan fuses R2' (`∪⇓Y ≥ ∪⇑X`, ∃) with R3'
    ///   (`lo_Y ≥ ∩⇑X`, ∀);
    /// * R1/R4 ride along on whichever scan is shorter (their Auto
    ///   side, `min(|N_X|, |N_Y|)`).
    ///
    /// The per-node `hi`/`lo` guards of the unfused path are dropped:
    /// per-node proxies always have a member on every node of their node
    /// set, so the guards are vacuously true on the restricted scans.
    ///
    /// Returns the relation set and the number of integer comparisons
    /// actually spent: `4·(2|N_X| + 2|N_Y| + 2·min(|N_X|, |N_Y|))`,
    /// versus the unfused `4·(2|N_X| + 2|N_Y| + 4·min(|N_X|, |N_Y|))`.
    pub fn eval_all_proxy_fused(&self, sx: &ProxySummary, sy: &ProxySummary) -> (RelationSet, u64) {
        let mut bits = 0u32;
        let mut comparisons = 0u64;
        // Combo order matches ProxyRelation::index: (xp·2 + yp)·8 + rel.
        for (combo, (xp, yp)) in [
            (Proxy::L, Proxy::L),
            (Proxy::L, Proxy::U),
            (Proxy::U, Proxy::L),
            (Proxy::U, Proxy::U),
        ]
        .into_iter()
        .enumerate()
        {
            let ex = sx.get(xp);
            let ey = sy.get(yp);
            let nx = ex.node_set();
            let ny = ey.node_set();
            let x_min = nx.len() <= ny.len();

            let (ex_hi, ex_c3, ex_c4) = (ex.hi_row(), ex.c3_row(), ex.c4_row());
            let (ey_lo, ey_c1, ey_c2) = (ey.lo_row(), ey.c1_row(), ey.c2_row());

            let mut r1 = true;
            let mut r2 = true;
            let mut r2p = false;
            let mut r3 = false;
            let mut r3p = true;
            let mut r4 = false;

            // Scan over N_X: R2 (∀), R3 (∃); R1/R4 when X is the short side.
            if x_min {
                for &i in nx {
                    r1 &= ey_c1[i] >= ex_hi[i];
                    r2 &= ey_c2[i] >= ex_hi[i];
                    r3 |= ey_c1[i] >= ex_c3[i];
                    r4 |= ey_c2[i] >= ex_c3[i];
                }
                comparisons += 4 * nx.len() as u64;
            } else {
                for &i in nx {
                    r2 &= ey_c2[i] >= ex_hi[i];
                    r3 |= ey_c1[i] >= ex_c3[i];
                }
                comparisons += 2 * nx.len() as u64;
            }

            // Scan over N_Y: R2' (∃), R3' (∀); R1/R4 when Y is the short side.
            if x_min {
                for &j in ny {
                    r2p |= ey_c2[j] >= ex_c4[j];
                    r3p &= ey_lo[j] >= ex_c3[j];
                }
                comparisons += 2 * ny.len() as u64;
            } else {
                for &j in ny {
                    r1 &= ey_lo[j] >= ex_c4[j];
                    r2p |= ey_c2[j] >= ex_c4[j];
                    r3p &= ey_lo[j] >= ex_c3[j];
                    r4 |= ey_c2[j] >= ex_c3[j];
                }
                comparisons += 4 * ny.len() as u64;
            }

            // Bit layout within the combo follows Relation::ALL:
            // [R1, R1', R2, R2', R3, R3', R4, R4'].
            let base = combo as u32 * 8;
            bits |= (r1 as u32) << base;
            bits |= (r1 as u32) << (base + 1);
            bits |= (r2 as u32) << (base + 2);
            bits |= (r2p as u32) << (base + 3);
            bits |= (r3 as u32) << (base + 4);
            bits |= (r3p as u32) << (base + 5);
            bits |= (r4 as u32) << (base + 6);
            bits |= (r4 as u32) << (base + 7);
        }
        (RelationSet(bits), comparisons)
    }

    /// [`Evaluator::eval_all_proxy_fused`] reporting to a [`Meter`].
    ///
    /// Only the pair total is reported: the fused kernel shares its
    /// predicate scans across the eight relations of a combo, so there
    /// is no per-relation comparison count to attribute — per-relation
    /// Theorem-20 accounting is what the counted path
    /// ([`Evaluator::eval_all_proxy_with`]) is for.
    #[inline]
    pub fn eval_all_proxy_fused_with<M: Meter>(
        &self,
        sx: &ProxySummary,
        sy: &ProxySummary,
        meter: &M,
    ) -> (RelationSet, u64) {
        let (set, comparisons) = self.eval_all_proxy_fused(sx, sy);
        if meter.enabled() {
            meter.on_pair(comparisons);
        }
        (set, comparisons)
    }
}

/// Y columns per accumulator block of [`SummaryArena::eval_row_batch`]:
/// small enough that the six per-predicate accumulators stay in L1,
/// large enough to amortize the per-node scalar loads.
const BATCH_CHUNK: usize = 128;

/// Lane width of the explicit `simd`-feature scan blocks, selected once
/// per process: 16 lanes when the CPU has AVX2-class 256-bit vectors
/// (two full `u32×8` registers per block, letting the compiler use both
/// halves of a 256-bit op), 8 otherwise. `SYNCHREL_SIMD_LANES=8|16`
/// overrides detection — CI uses it to exercise both paths
/// deterministically on whatever runner it lands on. Both widths (and
/// the scalar tail) compute identical bytes; this is purely a
/// code-shape knob.
#[cfg(feature = "simd")]
fn simd_lanes() -> usize {
    static WIDTH: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WIDTH.get_or_init(|| {
        match std::env::var("SYNCHREL_SIMD_LANES")
            .as_deref()
            .map(str::trim)
        {
            Ok("8") => return 8,
            Ok("16") => return 16,
            _ => {}
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return 16;
        }
        8
    })
}

/// `N_X`-side accumulation over one node for a block of Y columns:
/// `c1`/`c2` are the contiguous arena rows of `∩⇓Y` / `∪⇓Y` at that
/// node, `xh`/`x3` the fixed X scalars (`hi_X[i]`, `∩⇑X[i]`). Only
/// called for `i ∈ N_X` (`xh ≠ 0`), so no membership mask is needed.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scan_x_side(
    xh: u32,
    x3: u32,
    c1: &[u32],
    c2: &[u32],
    r1x: &mut [u8],
    r2: &mut [u8],
    r3: &mut [u8],
    r4x: &mut [u8],
) {
    #[cfg(feature = "simd")]
    if simd_lanes() == 16 {
        scan_x_lanes::<16>(xh, x3, c1, c2, r1x, r2, r3, r4x);
    } else {
        scan_x_lanes::<8>(xh, x3, c1, c2, r1x, r2, r3, r4x);
    }
    #[cfg(not(feature = "simd"))]
    for k in 0..c1.len() {
        r1x[k] &= (c1[k] >= xh) as u8;
        r2[k] &= (c2[k] >= xh) as u8;
        r3[k] |= (c1[k] >= x3) as u8;
        r4x[k] |= (c2[k] >= x3) as u8;
    }
}

/// The `N_X`-side scan monomorphized at lane width `L`. Each block
/// iteration is a straight-line batch of `L` independent compare/mask
/// ops over fixed-size array views, mapping 1:1 onto vector registers
/// on stable Rust; the remainder runs scalar.
#[cfg(feature = "simd")]
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scan_x_lanes<const L: usize>(
    xh: u32,
    x3: u32,
    c1: &[u32],
    c2: &[u32],
    r1x: &mut [u8],
    r2: &mut [u8],
    r3: &mut [u8],
    r4x: &mut [u8],
) {
    let mut k = 0;
    while k + L <= c1.len() {
        let c1v: &[u32; L] = c1[k..k + L].try_into().unwrap();
        let c2v: &[u32; L] = c2[k..k + L].try_into().unwrap();
        for l in 0..L {
            r1x[k + l] &= (c1v[l] >= xh) as u8;
            r2[k + l] &= (c2v[l] >= xh) as u8;
            r3[k + l] |= (c1v[l] >= x3) as u8;
            r4x[k + l] |= (c2v[l] >= x3) as u8;
        }
        k += L;
    }
    for k in k..c1.len() {
        r1x[k] &= (c1[k] >= xh) as u8;
        r2[k] &= (c2[k] >= xh) as u8;
        r3[k] |= (c1[k] >= x3) as u8;
        r4x[k] |= (c2[k] >= x3) as u8;
    }
}

/// `N_Y`-side accumulation over one node for a block of Y columns.
/// Membership varies per column, so the scan is masked by
/// `lo_Y[i] ≠ 0 ⟺ i ∈ N_Y` instead of branching.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scan_y_side(
    x3: u32,
    x4: u32,
    lo: &[u32],
    c2: &[u32],
    r1y: &mut [u8],
    r2p: &mut [u8],
    r3p: &mut [u8],
    r4y: &mut [u8],
) {
    #[cfg(feature = "simd")]
    if simd_lanes() == 16 {
        scan_y_lanes::<16>(x3, x4, lo, c2, r1y, r2p, r3p, r4y);
    } else {
        scan_y_lanes::<8>(x3, x4, lo, c2, r1y, r2p, r3p, r4y);
    }
    #[cfg(not(feature = "simd"))]
    for k in 0..lo.len() {
        let m = (lo[k] != 0) as u8;
        r1y[k] &= (1 - m) | (lo[k] >= x4) as u8;
        r2p[k] |= m & (c2[k] >= x4) as u8;
        r3p[k] &= (1 - m) | (lo[k] >= x3) as u8;
        r4y[k] |= m & (c2[k] >= x3) as u8;
    }
}

/// The masked `N_Y`-side scan monomorphized at lane width `L`.
#[cfg(feature = "simd")]
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scan_y_lanes<const L: usize>(
    x3: u32,
    x4: u32,
    lo: &[u32],
    c2: &[u32],
    r1y: &mut [u8],
    r2p: &mut [u8],
    r3p: &mut [u8],
    r4y: &mut [u8],
) {
    let mut k = 0;
    while k + L <= lo.len() {
        let lov: &[u32; L] = lo[k..k + L].try_into().unwrap();
        let c2v: &[u32; L] = c2[k..k + L].try_into().unwrap();
        for l in 0..L {
            let m = (lov[l] != 0) as u8;
            r1y[k + l] &= (1 - m) | (lov[l] >= x4) as u8;
            r2p[k + l] |= m & (c2v[l] >= x4) as u8;
            r3p[k + l] &= (1 - m) | (lov[l] >= x3) as u8;
            r4y[k + l] |= m & (c2v[l] >= x3) as u8;
        }
        k += L;
    }
    for k in k..lo.len() {
        let m = (lo[k] != 0) as u8;
        r1y[k] &= (1 - m) | (lo[k] >= x4) as u8;
        r2p[k] |= m & (c2[k] >= x4) as u8;
        r3p[k] &= (1 - m) | (lo[k] >= x3) as u8;
        r4y[k] |= m & (c2[k] >= x3) as u8;
    }
}

impl SummaryArena {
    /// Batched row-sweep kernel: fix event `x`, sweep the contiguous
    /// slab of events `y0 .. y0 + out.len()`, and write each pair's
    /// 32-bit [`RelationSet`] word into `out`. If the diagonal column
    /// `y == x` falls inside the slab it is evaluated harmlessly; the
    /// caller drops it when assembling reports.
    ///
    /// **Bit-identical to [`Evaluator::eval_all_proxy_fused`]** on every
    /// pair, by construction rather than by theorem: per proxy combo the
    /// kernel accumulates *both* the `N_X`-side and `N_Y`-side variants
    /// of the shared R1/R4 predicates — restricted scans expressed
    /// branch-free via the membership masks `hi_X[i] ≠ 0 ⟺ i ∈ N_X` and
    /// `lo_Y[i] ≠ 0 ⟺ i ∈ N_Y` — and then selects per column with the
    /// same `|N_X| ≤ |N_Y|` rule the fused kernel branches on. R2/R3
    /// always take the `N_X` side and R2'/R3' the `N_Y` side, exactly as
    /// in the fused scans.
    ///
    /// The arena's transposed layout makes every inner loop a
    /// unit-stride pass of `u32` compares over a chunk of Y columns with
    /// `u8` 0/1 accumulators — no branches, gathers, or per-pair summary
    /// lookups — which the compiler auto-vectorizes; the `simd` cargo
    /// feature swaps in an explicit fixed-width lane path (8 or 16
    /// lanes, runtime-selected by `simd_lanes`).
    pub fn eval_row_batch(&self, x: usize, y0: usize, out: &mut [RelationSet]) {
        let m = out.len();
        assert!(
            x < self.len() && y0 + m <= self.len(),
            "row slab out of range: x={x}, y0={y0}, len={m}, arena={}",
            self.len()
        );
        for r in out.iter_mut() {
            *r = RelationSet::empty();
        }
        if m == 0 {
            return;
        }
        let w = self.width();
        let nx = self.node_count(x);

        let mut off = 0usize;
        while off < m {
            let ch = (m - off).min(BATCH_CHUNK);
            let ys = y0 + off;
            // Combo order matches ProxyRelation::index: (xp·2 + yp)·8 + rel.
            for combo in 0..4usize {
                let (cx, cy) = (combo >> 1, combo & 1);
                let mut r1x = [1u8; BATCH_CHUNK];
                let mut r1y = [1u8; BATCH_CHUNK];
                let mut r2 = [1u8; BATCH_CHUNK];
                let mut r2p = [0u8; BATCH_CHUNK];
                let mut r3 = [0u8; BATCH_CHUNK];
                let mut r3p = [1u8; BATCH_CHUNK];
                let mut r4x = [0u8; BATCH_CHUNK];
                let mut r4y = [0u8; BATCH_CHUNK];
                for i in 0..w {
                    let xh = self.value(cx, arena_seg::HI, i, x);
                    let x3 = self.value(cx, arena_seg::C3, i, x);
                    let x4 = self.value(cx, arena_seg::C4, i, x);
                    let lo = &self.plane(cy, arena_seg::LO, i)[ys..ys + ch];
                    let c1 = &self.plane(cy, arena_seg::C1, i)[ys..ys + ch];
                    let c2 = &self.plane(cy, arena_seg::C2, i)[ys..ys + ch];
                    if xh != 0 {
                        scan_x_side(
                            xh,
                            x3,
                            c1,
                            c2,
                            &mut r1x[..ch],
                            &mut r2[..ch],
                            &mut r3[..ch],
                            &mut r4x[..ch],
                        );
                    }
                    scan_y_side(
                        x3,
                        x4,
                        lo,
                        c2,
                        &mut r1y[..ch],
                        &mut r2p[..ch],
                        &mut r3p[..ch],
                        &mut r4y[..ch],
                    );
                }
                // Bit layout within the combo follows Relation::ALL:
                // [R1, R1', R2, R2', R3, R3', R4, R4'].
                let base = combo as u32 * 8;
                let nys = &self.node_counts()[ys..ys + ch];
                for k in 0..ch {
                    let ux = (nx <= nys[k]) as u8;
                    let r1 = (ux & r1x[k]) | ((1 - ux) & r1y[k]);
                    let r4 = (ux & r4x[k]) | ((1 - ux) & r4y[k]);
                    let bits = ((r1 as u32) << base)
                        | ((r1 as u32) << (base + 1))
                        | ((r2[k] as u32) << (base + 2))
                        | ((r2p[k] as u32) << (base + 3))
                        | ((r3[k] as u32) << (base + 4))
                        | ((r3p[k] as u32) << (base + 5))
                        | ((r4 as u32) << (base + 6))
                        | ((r4 as u32) << (base + 7));
                    out[off + k].0 |= bits;
                }
            }
            off += ch;
        }
    }
}

/// Ground truth for a relation of `ℛ`: materialize the proxies under
/// `def` and evaluate the quantifier expression naively.
///
/// With [`ProxyDefinition::Global`] the proxy may not exist
/// ([`crate::error::Error::EmptyProxy`]).
pub fn naive_proxy(
    exec: &Execution,
    pr: ProxyRelation,
    x: &NonatomicEvent,
    y: &NonatomicEvent,
    def: ProxyDefinition,
) -> Result<bool> {
    let xh = match pr.x_proxy {
        Proxy::L => x.proxy_lower(exec, def)?,
        Proxy::U => x.proxy_upper(exec, def)?,
    };
    let yh = match pr.y_proxy {
        Proxy::L => y.proxy_lower(exec, def)?,
        Proxy::U => y.proxy_upper(exec, def)?,
    };
    Ok(naive(exec, pr.rel, &xh, &yh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{EventId, ExecutionBuilder};

    #[test]
    fn index_roundtrip() {
        for (k, pr) in ProxyRelation::all().enumerate() {
            assert_eq!(pr.index(), k);
            assert_eq!(ProxyRelation::from_index(k), pr);
        }
        assert_eq!(ProxyRelation::all().count(), 32);
    }

    #[test]
    fn relation_set_ops() {
        let mut s = RelationSet::empty();
        assert!(s.is_empty());
        let r = ProxyRelation::new(Relation::R3, Proxy::U, Proxy::L);
        s.insert(r);
        assert!(s.contains(r));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r]);
        assert!(!s.contains(ProxyRelation::new(Relation::R3, Proxy::L, Proxy::L)));
    }

    #[test]
    fn display() {
        let r = ProxyRelation::new(Relation::R2p, Proxy::U, Proxy::L);
        assert_eq!(r.to_string(), "R2'(U_X, L_Y)");
    }

    fn pool_exec() -> (Execution, Vec<EventId>) {
        let mut bld = ExecutionBuilder::new(3);
        let a = bld.internal(0);
        let (s1, m1) = bld.send(0);
        let r1 = bld.recv(1, m1).unwrap();
        let b = bld.internal(1);
        let (s2, m2) = bld.send(1);
        let r2 = bld.recv(2, m2).unwrap();
        (bld.build().unwrap(), vec![a, s1, r1, b, s2, r2])
    }

    #[test]
    fn linear_matches_naive_proxy_exhaustive() {
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                let sx = ev.summarize_proxies(&x);
                let sy = ev.summarize_proxies(&y);
                let (set, _) = ev.eval_all_proxy(&sx, &sy);
                for pr in ProxyRelation::all() {
                    let want = naive_proxy(&e, pr, &x, &y, ProxyDefinition::PerNode).unwrap();
                    assert_eq!(set.contains(pr), want, "{pr} on X={xm:b} Y={ym:b}");
                }
            }
        }
    }

    #[test]
    fn fused_matches_unfused_exhaustive() {
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                let sx = ev.summarize_proxies(&x);
                let sy = ev.summarize_proxies(&y);
                let (unfused, cmp_unfused) = ev.eval_all_proxy(&sx, &sy);
                let (fused, cmp_fused) = ev.eval_all_proxy_fused(&sx, &sy);
                assert_eq!(fused, unfused, "verdicts on X={xm:b} Y={ym:b}");
                assert!(
                    cmp_fused <= cmp_unfused,
                    "fused {cmp_fused} > unfused {cmp_unfused} on X={xm:b} Y={ym:b}"
                );
            }
        }
    }

    #[test]
    fn fused_comparison_formula() {
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, [pool[0], pool[1]]).unwrap();
        let y = NonatomicEvent::new(&e, [pool[2], pool[4], pool[5]]).unwrap();
        let sx = ev.summarize_proxies(&x);
        let sy = ev.summarize_proxies(&y);
        let (nx, ny) = (x.node_count() as u64, y.node_count() as u64);
        let (_, cmp) = ev.eval_all_proxy_fused(&sx, &sy);
        assert_eq!(cmp, 4 * (2 * nx + 2 * ny + 2 * nx.min(ny)));
    }

    #[test]
    fn batched_matches_fused_exhaustive_including_overlap() {
        // Unlike the disjoint-only exhaustive tests above, this covers
        // every ordered pair of event sets — including overlapping and
        // identical ones — because the detector evaluates all ordered
        // pairs and the batched kernel must be bit-identical to fused
        // on each of them.
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        let mut events = Vec::new();
        for m in 1u32..(1 << pool.len()) {
            let ids: Vec<EventId> = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| m & (1 << k) != 0)
                .map(|(_, &v)| v)
                .collect();
            events.push(NonatomicEvent::new(&e, ids).unwrap());
        }
        let summaries: Vec<ProxySummary> = events.iter().map(|x| ev.summarize_proxies(x)).collect();
        let arena = SummaryArena::build(e.num_processes(), summaries.iter());
        let n = events.len();
        let mut row = vec![RelationSet::empty(); n];
        for x in 0..n {
            arena.eval_row_batch(x, 0, &mut row);
            for y in 0..n {
                let (fused, cmp) = ev.eval_all_proxy_fused(&summaries[x], &summaries[y]);
                assert_eq!(row[y], fused, "verdicts on pair ({x}, {y})");
                assert_eq!(
                    arena.pair_comparisons(x, y),
                    cmp,
                    "comparisons on pair ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn batched_slab_offsets_match_full_row() {
        // Sweeping a row in arbitrary sub-slabs must equal one full
        // sweep (the parallel detector steals row slabs).
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        let events: Vec<NonatomicEvent> = (0..pool.len())
            .map(|k| NonatomicEvent::new(&e, [pool[k]]).unwrap())
            .collect();
        let arena = SummaryArena::new(&ev, &events);
        let n = events.len();
        let mut full = vec![RelationSet::empty(); n];
        for x in 0..n {
            arena.eval_row_batch(x, 0, &mut full);
            for y0 in 0..n {
                for len in 0..=(n - y0) {
                    let mut slab = vec![RelationSet::empty(); len];
                    arena.eval_row_batch(x, y0, &mut slab);
                    assert_eq!(&slab[..], &full[y0..y0 + len], "x={x} y0={y0} len={len}");
                }
            }
        }
    }

    #[test]
    fn batched_chunk_boundaries() {
        // Slabs longer than BATCH_CHUNK exercise the chunk loop; build
        // > 128 events by repeating the pool singletons.
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        let events: Vec<NonatomicEvent> = (0..300)
            .map(|k| NonatomicEvent::new(&e, [pool[k % pool.len()]]).unwrap())
            .collect();
        let summaries: Vec<ProxySummary> = events.iter().map(|x| ev.summarize_proxies(x)).collect();
        let arena = SummaryArena::build(e.num_processes(), summaries.iter());
        let mut row = vec![RelationSet::empty(); events.len()];
        for x in [0, 7, 150] {
            arena.eval_row_batch(x, 0, &mut row);
            for y in [0, 1, 127, 128, 129, 255, 256, 299] {
                let (fused, _) = ev.eval_all_proxy_fused(&summaries[x], &summaries[y]);
                assert_eq!(row[y], fused, "pair ({x}, {y})");
            }
        }
    }

    #[test]
    fn global_proxy_summaries_match_naive() {
        // Where Definition-3 proxies exist, the linear evaluation over
        // their summaries equals the naive evaluation over the
        // materialized singleton proxies.
        let (e, pool) = pool_exec();
        let ev = Evaluator::new(&e);
        // a ≺ s1 ≺ r1 ≺ b ≺ s2 ≺ r2 is a chain: global proxies exist for
        // any sub-chain.
        let x = NonatomicEvent::new(&e, [pool[0], pool[1]]).unwrap();
        let y = NonatomicEvent::new(&e, [pool[2], pool[3], pool[4]]).unwrap();
        let sx = ev
            .summarize_proxies_with(&x, ProxyDefinition::Global)
            .unwrap();
        let sy = ev
            .summarize_proxies_with(&y, ProxyDefinition::Global)
            .unwrap();
        for pr in ProxyRelation::all() {
            let want = naive_proxy(&e, pr, &x, &y, ProxyDefinition::Global).unwrap();
            assert_eq!(ev.eval_proxy(pr, &sx, &sy).holds, want, "{pr}");
        }
    }

    #[test]
    fn global_proxy_summaries_fail_without_extremum() {
        let mut b = ExecutionBuilder::new(2);
        let a = b.internal(0);
        let c = b.internal(1);
        let e = b.build().unwrap();
        let ev = Evaluator::new(&e);
        let x = NonatomicEvent::new(&e, [a, c]).unwrap();
        assert!(ev
            .summarize_proxies_with(&x, ProxyDefinition::Global)
            .is_err());
    }

    #[test]
    fn proxies_may_overlap_between_x_and_y_only_if_events_do() {
        // Sanity: for disjoint X and Y the proxies are also disjoint.
        let (e, pool) = pool_exec();
        let x = NonatomicEvent::new(&e, [pool[0], pool[1]]).unwrap();
        let y = NonatomicEvent::new(&e, [pool[2], pool[3]]).unwrap();
        let lx = x.proxy_lower(&e, ProxyDefinition::PerNode).unwrap();
        let uy = y.proxy_upper(&e, ProxyDefinition::PerNode).unwrap();
        assert!(!lx.overlaps(&uy));
    }

    #[test]
    fn base_relations_equal_specific_proxy_relations() {
        // R1(X,Y) ≡ R1(U_X, L_Y); R4(X,Y) ≡ R4(L_X, U_Y);
        // R2(X,Y) ≡ R2(U_X, U_Y); R3(X,Y) ≡ R3(L_X, L_Y).
        let (e, pool) = pool_exec();
        for xm in 1u32..(1 << pool.len()) {
            for ym in 1u32..(1 << pool.len()) {
                if xm & ym != 0 {
                    continue;
                }
                let xs: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| xm & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let ys: Vec<EventId> = pool
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| ym & (1 << k) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let x = NonatomicEvent::new(&e, xs).unwrap();
                let y = NonatomicEvent::new(&e, ys).unwrap();
                for (rel, xp, yp) in [
                    (Relation::R1, Proxy::U, Proxy::L),
                    (Relation::R2, Proxy::U, Proxy::U),
                    (Relation::R2p, Proxy::U, Proxy::U),
                    (Relation::R3, Proxy::L, Proxy::L),
                    (Relation::R3p, Proxy::L, Proxy::L),
                    (Relation::R4, Proxy::L, Proxy::U),
                ] {
                    let pr = ProxyRelation::new(rel, xp, yp);
                    assert_eq!(
                        naive(&e, rel, &x, &y),
                        naive_proxy(&e, pr, &x, &y, ProxyDefinition::PerNode).unwrap(),
                        "{pr}"
                    );
                }
            }
        }
    }
}
