//! Theorem-20 conformance: metered comparison counts against the
//! paper's complexity claim, over ≥1000 seeded executions.
//!
//! Theorem 20 claims every relation of `ℛ` is decidable in
//! `min(|N_X|,|N_Y|)` comparisons (`|N_X|` for R2, `|N_Y|` for R3').
//! The workspace proves that claim for six of the eight base relations;
//! for R2'/R3 the sound scan costs `|N_Y|` / `|N_X|` instead (the
//! documented discrepancy — see `tests/linear_discrepancy.rs` and
//! `crates/core/src/linear.rs`). This suite turns the bounds into
//! executable assertions via the metering layer:
//!
//! * measured comparisons never exceed the sound bound, and equal it
//!   exactly (the scans are deterministic, no short-circuit);
//! * the paper's claimed bound holds wherever it is sound, and the
//!   meter's `claimed_excess` tally quantifies the R2'/R3 divergence;
//! * counted-mode and fused-mode verdicts agree under metering, and
//!   metering never perturbs the reports.

use synchrel_core::{
    sound_bound, theorem20_bound, CompareCounter, Detector, EvalMode, Evaluator, ProxyRelation,
    Relation,
};
use synchrel_sim::workload::{seeded, Workload};

/// Seeded executions checked by the main conformance test.
const EXECUTIONS: u64 = 1000;

/// Check every ordered pair of one workload: per-evaluation bounds,
/// counted-vs-fused verdict agreement, and feed the aggregate meter.
fn check_workload(w: &Workload, agg: &CompareCounter) {
    let ev = Evaluator::new(&w.exec);
    let summaries: Vec<_> = w.events.iter().map(|e| ev.summarize_proxies(e)).collect();
    for (xi, sx) in summaries.iter().enumerate() {
        for (yi, sy) in summaries.iter().enumerate() {
            if xi == yi {
                continue;
            }
            // Per-node proxies share the base event's node set, so the
            // bound arguments are the events' node counts.
            let nx = w.events[xi].node_count();
            let ny = w.events[yi].node_count();

            let (counted_set, _) = ev.eval_all_proxy_with(sx, sy, agg);
            let (fused_set, _) = ev.eval_all_proxy_fused(sx, sy);
            assert_eq!(
                counted_set, fused_set,
                "counted vs fused verdicts on pair ({xi}, {yi})"
            );

            for pr in ProxyRelation::all() {
                let c = ev.eval_proxy(pr, sx, sy);
                let sound = sound_bound(pr.rel, nx, ny);
                assert!(
                    c.comparisons <= sound,
                    "{pr} spent {} > sound bound {sound} on pair ({xi}, {yi})",
                    c.comparisons
                );
                assert_eq!(
                    c.comparisons, sound,
                    "{pr}: deterministic scan must spend its whole budget"
                );
                if !matches!(pr.rel, Relation::R2p | Relation::R3) {
                    let claimed = theorem20_bound(pr.rel, nx, ny);
                    assert!(
                        c.comparisons <= claimed,
                        "{pr} spent {} > Theorem-20 bound {claimed} on pair ({xi}, {yi})",
                        c.comparisons
                    );
                }
            }
        }
    }
}

#[test]
fn thousand_seeded_executions_respect_bounds() {
    let agg = CompareCounter::new();
    for seed in 0..EXECUTIONS {
        let processes = 2 + (seed % 5) as usize; // 2..=6
        let events = 4 + (seed % 7) as usize; // 4..=10
        let w = seeded(seed, processes, events, 4, processes.min(3), 2);
        check_workload(&w, &agg);
    }

    let snap = agg.snapshot(Relation::NAMES);
    assert!(
        snap.pairs >= EXECUTIONS,
        "every execution contributed pairs"
    );
    for t in &snap.relations {
        assert!(t.evals > 0, "{}: no evaluations recorded", t.name);
        assert_eq!(
            t.sound_violations, 0,
            "{}: {} evaluation(s) exceeded the sound bound",
            t.name, t.sound_violations
        );
        assert_eq!(
            t.comparisons, t.sound_budget,
            "{}: scans are deterministic, total must equal the budget",
            t.name
        );
    }
    // The paper's min() claim is met by six relations; with varied node
    // counts R2'/R3 must exceed it somewhere — the meter quantifies the
    // documented discrepancy rather than hiding it.
    for t in &snap.relations {
        match t.name.as_str() {
            "R2'" | "R3" => assert!(
                t.claimed_excess > 0,
                "{}: expected the claimed-bound divergence to show up",
                t.name
            ),
            _ => assert_eq!(
                t.claimed_excess, 0,
                "{}: exceeded the paper's claimed bound",
                t.name
            ),
        }
    }
}

/// Detector level: metering changes no report, in any mode, and the
/// fused meter sees the same pair count as the counted one (it only
/// lacks per-relation attribution, since fused scans are shared).
#[test]
fn metered_detectors_agree_across_modes() {
    for seed in [1u64, 7, 42, 0xBEEF] {
        let w = seeded(seed, 5, 12, 6, 3, 2);
        let counted = Detector::new(&w.exec, w.events.clone()).with_mode(EvalMode::Counted);
        let fused = Detector::new(&w.exec, w.events.clone()).with_mode(EvalMode::Fused);

        let cm = CompareCounter::new();
        let fm = CompareCounter::new();
        let a = counted.all_pairs_with(&cm);
        let b = fused.all_pairs_with(&fm);

        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.relations, y.relations, "seed {seed:#x}");
        }
        assert_eq!(a, counted.all_pairs(), "metering perturbed counted reports");
        assert_eq!(b, fused.all_pairs(), "metering perturbed fused reports");

        assert_eq!(cm.pairs(), a.len() as u64);
        assert_eq!(fm.pairs(), cm.pairs());
        assert!(cm.evals() > 0);
        assert_eq!(fm.evals(), 0, "fused path has no per-relation attribution");
    }
}
