//! Property suite for the online monitor's verdict semantics:
//!
//! * **stability** — once a watch reports `Holds` or `Violated`, no
//!   further event may change the verdict (the whole point of the
//!   monotonicity analysis);
//! * **completeness** — after all intervals close, nothing is `Pending`;
//! * **agreement** — final verdicts equal the offline naive evaluation.

use proptest::prelude::*;

use synchrel_core::{naive_relation, EventKind, Relation};
use synchrel_monitor::{OnlineMonitor, Verdict};
use synchrel_sim::intervals::per_process_phases;
use synchrel_sim::workload::{random, RandomConfig};

fn replay_with_checks(seed: u64, processes: usize) -> Result<(), TestCaseError> {
    let w = random(&RandomConfig {
        processes,
        events_per_process: 6,
        message_prob: 0.35,
        seed,
    });
    let phases = per_process_phases(&w.exec, 2);
    prop_assume!(phases.len() == 2);
    let label_of = |e: synchrel_core::EventId| -> Vec<String> {
        phases
            .iter()
            .position(|p| p.contains(e))
            .map(|k| vec![format!("ph{k}")])
            .into_iter()
            .flatten()
            .collect()
    };

    let mut mon = OnlineMonitor::new(processes);
    // Watch every relation in both directions.
    for rel in Relation::ALL {
        mon.watch(format!("{rel}-fwd"), rel, "ph0", "ph1");
        mon.watch(format!("{rel}-bwd"), rel, "ph1", "ph0");
    }

    let mut decided: std::collections::BTreeMap<String, Verdict> = Default::default();
    let mut tokens: Vec<Option<synchrel_monitor::online::OnlineMsg>> = Vec::new();

    let mut step_check = |mon: &mut OnlineMonitor| -> Result<(), TestCaseError> {
        for ev in mon.poll() {
            match decided.get(&ev.name) {
                None => {
                    if ev.verdict != Verdict::Pending {
                        decided.insert(ev.name.clone(), ev.verdict);
                    }
                }
                Some(&prev) => {
                    // Stability: a decided verdict may never change.
                    prop_assert_eq!(
                        ev.verdict,
                        prev,
                        "watch {} flipped from {:?} to {:?}",
                        ev.name,
                        prev,
                        ev.verdict
                    );
                }
            }
        }
        Ok(())
    };

    for &e in w.exec.app_order() {
        let labels = label_of(e);
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let p = e.process.idx();
        match w.exec.kind(e) {
            EventKind::Internal => mon.internal(p, &refs).unwrap(),
            EventKind::Send { msg } => {
                let t = mon.send(p, &refs).unwrap();
                let mi = msg as usize;
                if tokens.len() <= mi {
                    tokens.resize(mi + 1, None);
                }
                tokens[mi] = Some(t);
            }
            EventKind::Recv { msg } => {
                let t = tokens[msg as usize].take().unwrap();
                mon.recv(p, t, &refs).unwrap();
            }
            EventKind::Initial | EventKind::Final => unreachable!(),
        }
        step_check(&mut mon)?;
    }
    mon.close("ph0");
    step_check(&mut mon)?;
    mon.close("ph1");
    step_check(&mut mon)?;

    // Completeness + agreement.
    for (name, verdict) in mon.verdicts() {
        prop_assert_ne!(
            verdict,
            Verdict::Pending,
            "watch {} still pending after close",
            name
        );
        let (rel_name, dir) = name.split_once('-').expect("name format");
        let rel = Relation::ALL
            .into_iter()
            .find(|r| r.name() == rel_name)
            .expect("valid relation name");
        let (x, y) = if dir == "fwd" {
            (&phases[0], &phases[1])
        } else {
            (&phases[1], &phases[0])
        };
        let want = if naive_relation(&w.exec, rel, x, y) {
            Verdict::Holds
        } else {
            Verdict::Violated
        };
        prop_assert_eq!(verdict, want, "watch {} disagrees offline", name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verdicts_stable_complete_and_correct(
        seed in any::<u64>(),
        processes in 2..7usize,
    ) {
        replay_with_checks(seed, processes)?;
    }
}
