//! Property suite for the fused 32-relation kernel (and the arena
//! timestamps beneath it), on randomized executions:
//!
//! * **fused ≡ unfused** — `eval_all_proxy_fused` returns exactly the
//!   relation set of the 32 independent `eval_proxy` calls, never
//!   spending more comparisons;
//! * **unfused ≡ naive** — each linear-time verdict agrees with the
//!   quantifier-expansion ground truth over per-node proxies;
//! * **exact counts** — the unfused path spends exactly the sound
//!   comparison budget per relation, which coincides with the paper's
//!   Theorem-20 table for every relation except R2'/R3 (the documented
//!   discrepancy, where the sound bound is `|N_Y|` / `|N_X|`);
//! * **detector modes** — `EvalMode::Fused` and `EvalMode::Batched`
//!   (sequential and tiled parallel) report the same relation sets as
//!   the default counted mode, byte-identical to each other (verdicts
//!   and Theorem-20 comparison counts), on general workloads and on
//!   adversarial operand shapes: single-process events, fully
//!   overlapping `X`/`Y`, and `|N_X| ≠ |N_Y|`;
//! * **tiling** — the tile width is invisible in the output: every
//!   mode × thread count {1, 2, 4, 8} × tile width {1, 7, default,
//!   wider-than-input} combination is byte-identical to the sequential
//!   default, meter snapshots included, down to empty, single-interval,
//!   and giant-interval degenerate inputs.

use proptest::prelude::*;

use synchrel_core::{
    naive_proxy, sound_bound, theorem20_bound, CompareCounter, Detector, EvalMode, Evaluator,
    EventId, Execution, IncrementalDetector, NonatomicEvent, NoopMeter, PairReport, ProcessId,
    ProxyDefinition, ProxyRelation, Relation, DEFAULT_TILE,
};
use synchrel_sim::fault::{mix, random_scripts, FaultLog, FaultPlan};
use synchrel_sim::intervals;
use synchrel_sim::workload::{random_with_events, RandomConfig, Workload};

fn gen_workload(seed: u64, processes: usize, events_per_process: usize) -> Workload {
    random_with_events(
        &RandomConfig {
            processes,
            events_per_process,
            message_prob: 0.35,
            seed,
        },
        5,
        (processes / 2).max(1),
        3,
    )
}

fn check_workload(w: &Workload) -> Result<(), TestCaseError> {
    let ev = Evaluator::new(&w.exec);
    let summaries: Vec<_> = w.events.iter().map(|e| ev.summarize_proxies(e)).collect();

    for (xi, sx) in summaries.iter().enumerate() {
        for (yi, sy) in summaries.iter().enumerate() {
            if xi == yi {
                continue;
            }
            let (fused_set, fused_cmp) = ev.eval_all_proxy_fused(sx, sy);
            let (unfused_set, unfused_cmp) = ev.eval_all_proxy(sx, sy);
            prop_assert_eq!(
                fused_set,
                unfused_set,
                "fused vs unfused on pair ({}, {})",
                xi,
                yi
            );
            prop_assert!(
                fused_cmp <= unfused_cmp,
                "fused spent {} > unfused {} on pair ({}, {})",
                fused_cmp,
                unfused_cmp,
                xi,
                yi
            );

            // The linear evaluators are specified for disjoint operands
            // only; compare against ground truth where that holds.
            let disjoint = !w.events[xi].overlaps(&w.events[yi]);
            for pr in ProxyRelation::all() {
                let c = ev.eval_proxy(pr, sx, sy);
                prop_assert_eq!(
                    fused_set.contains(pr),
                    c.holds,
                    "{} disagrees on pair ({}, {})",
                    pr,
                    xi,
                    yi
                );

                if disjoint {
                    let ground = naive_proxy(
                        &w.exec,
                        pr,
                        &w.events[xi],
                        &w.events[yi],
                        ProxyDefinition::PerNode,
                    )
                    .expect("per-node proxies exist");
                    prop_assert_eq!(c.holds, ground, "{} vs naive on pair ({}, {})", pr, xi, yi);
                }

                // Per-node proxies share the base event's node set, so
                // the bound arguments are the events' node counts.
                let nx = w.events[xi].node_count();
                let ny = w.events[yi].node_count();
                prop_assert_eq!(
                    c.comparisons,
                    sound_bound(pr.rel, nx, ny),
                    "{} count on pair ({}, {})",
                    pr,
                    xi,
                    yi
                );
                if !matches!(pr.rel, Relation::R2p | Relation::R3) {
                    prop_assert_eq!(c.comparisons, theorem20_bound(pr.rel, nx, ny));
                }
            }
        }
    }

    // Detector-level: fused and batched modes (sequential and parallel)
    // report the same relation sets as the counted reference, and agree
    // with each other byte-for-byte, comparisons included.
    let counted = Detector::new(&w.exec, w.events.clone());
    let fused = Detector::new(&w.exec, w.events.clone()).with_mode(EvalMode::Fused);
    let batched = Detector::new(&w.exec, w.events.clone()).with_mode(EvalMode::Batched);
    let ref_reports = counted.all_pairs();
    let fused_seq = fused.all_pairs();
    let fused_par = fused.all_pairs_parallel(4);
    prop_assert_eq!(fused_seq.clone(), fused_par);
    prop_assert_eq!(fused_seq.clone(), batched.all_pairs(), "batched != fused");
    prop_assert_eq!(
        fused_seq.clone(),
        batched.all_pairs_parallel(4),
        "parallel batched != fused"
    );
    prop_assert_eq!(ref_reports.len(), fused_seq.len());
    for (a, b) in ref_reports.iter().zip(&fused_seq) {
        prop_assert_eq!(a.relations, b.relations, "pair ({}, {})", a.x, a.y);
        prop_assert!(b.comparisons <= a.comparisons, "pair ({}, {})", a.x, a.y);
    }
    Ok(())
}

/// Adversarial operand shapes for the batched kernel: single-process
/// events, duplicated (fully overlapping) events, partially overlapping
/// same-process events, and node sets of different sizes — all in one
/// detector set, so every cross shape appears as a pair. Counted,
/// fused, and batched must agree on every relation set; fused and
/// batched must be byte-identical (comparisons included) and feed
/// identical totals into the `CompareCounter`.
fn check_batched_shapes(exec: &Execution) -> Result<(), TestCaseError> {
    let procs = exec.num_processes();
    let take = |p: usize, lo: u32, n: u32| -> Vec<EventId> {
        let avail = exec.app_len(ProcessId(p as u32));
        (0..n)
            .map(|k| EventId::new(p as u32, 1 + (lo + k) % avail.max(1)))
            .collect()
    };
    let mk = |members: Vec<EventId>| NonatomicEvent::new(exec, members).expect("valid members");

    // |N| = 1 on the first and last process, overlapping prefixes on
    // process 0, one node per process (|N| = procs), plus an exact
    // duplicate of the first event (fully overlapping X/Y pairs).
    let x_single = mk(take(0, 0, 3));
    let x_single_shift = mk(take(0, 1, 3));
    let y_single = mk(take(procs - 1, 0, 2));
    let wide = mk((0..procs).flat_map(|p| take(p, 0, 2)).collect());
    let dup = x_single.clone();
    let events = vec![x_single, x_single_shift, y_single, wide, dup];

    let counted = Detector::new(exec, events.clone());
    let fused = Detector::new(exec, events.clone()).with_mode(EvalMode::Fused);
    let batched = Detector::new(exec, events).with_mode(EvalMode::Batched);

    let fm = CompareCounter::new();
    let bm = CompareCounter::new();
    let ref_reports = counted.all_pairs();
    let fused_reports = fused.all_pairs_with(&fm);
    let batched_reports = batched.all_pairs_with(&bm);
    prop_assert_eq!(
        fused_reports.clone(),
        batched_reports,
        "batched != fused on shaped operands"
    );
    for (a, b) in ref_reports.iter().zip(&fused_reports) {
        prop_assert_eq!(a.relations, b.relations, "shaped pair ({}, {})", a.x, a.y);
    }
    prop_assert_eq!(
        fm.snapshot(Relation::NAMES),
        bm.snapshot(Relation::NAMES),
        "meter totals diverged between fused and batched"
    );
    // Thread-count independence on these shapes too.
    for threads in [1, 3, 8] {
        prop_assert_eq!(
            fused_reports.clone(),
            batched.all_pairs_parallel(threads),
            "batched×{} diverged on shaped operands",
            threads
        );
    }
    Ok(())
}

/// Work-stealing parallel pair evaluation is deterministic and
/// identical to the sequential scan, for every mode and any thread
/// count: same reports, same order, same comparison tallies.
fn check_parallel_determinism(w: &Workload) -> Result<(), TestCaseError> {
    for mode in [EvalMode::Counted, EvalMode::Fused, EvalMode::Batched] {
        let d = Detector::new(&w.exec, w.events.clone()).with_mode(mode);
        let sequential = d.all_pairs();
        for threads in [1, 2, 8] {
            let par = d.all_pairs_parallel(threads);
            prop_assert_eq!(
                &sequential,
                &par,
                "mode {:?}, {} threads diverged from sequential",
                mode,
                threads
            );
            // Re-running must be bit-identical: the steal-tail
            // schedule may differ between runs, the output must not.
            let again = d.all_pairs_parallel(threads);
            prop_assert_eq!(
                &par,
                &again,
                "mode {:?}, {} threads nondeterministic across runs",
                mode,
                threads
            );
        }
    }
    Ok(())
}

/// Tile width is a pure performance knob: for every evaluation mode,
/// thread count in {1, 2, 4, 8}, and tile width — including the
/// degenerate width 1, a prime width that never divides the input, the
/// default, and one wider than the whole input — the tiled engine
/// returns reports byte-identical to the default-width sequential
/// scan, and the merged meter snapshot equals the sequential baseline.
fn check_tiled_equivalence(w: &Workload) -> Result<(), TestCaseError> {
    let tiles = [1usize, 7, DEFAULT_TILE, w.events.len() + 13];
    for mode in [EvalMode::Counted, EvalMode::Fused, EvalMode::Batched] {
        let reference = Detector::new(&w.exec, w.events.clone()).with_mode(mode);
        let base = CompareCounter::new();
        let ref_reports = reference.all_pairs_with(&base);
        let ref_snap = base.snapshot(Relation::NAMES);
        for tile in tiles {
            let d = Detector::new(&w.exec, w.events.clone())
                .with_mode(mode)
                .with_tile(tile);
            prop_assert_eq!(
                &ref_reports,
                &d.all_pairs(),
                "mode {:?}, tile {}: sequential diverged",
                mode,
                tile
            );
            for threads in [1usize, 2, 4, 8] {
                let m = CompareCounter::new();
                let par = d.all_pairs_parallel_with(threads, &m);
                prop_assert_eq!(
                    &ref_reports,
                    &par,
                    "mode {:?}, tile {}, {} threads diverged",
                    mode,
                    tile,
                    threads
                );
                prop_assert_eq!(
                    &ref_snap,
                    &m.snapshot(Relation::NAMES),
                    "mode {:?}, tile {}, {} threads: merged meter diverged",
                    mode,
                    tile,
                    threads
                );
            }
        }
    }
    Ok(())
}

/// The tiled scheduler on degenerate inputs: an empty event set, a
/// single interval (zero ordered pairs), and one giant interval
/// spanning every process alongside minimal single-process intervals
/// (maximally skewed row costs). Every mode × tile × thread-count
/// combination must agree with the sequential counted reference.
fn check_tiled_degenerate_shapes(exec: &Execution) -> Result<(), TestCaseError> {
    let procs = exec.num_processes();
    let take = |p: usize, n: u32| -> Vec<EventId> {
        let avail = exec.app_len(ProcessId(p as u32));
        (0..n)
            .map(|k| EventId::new(p as u32, 1 + k % avail.max(1)))
            .collect()
    };
    let mk = |members: Vec<EventId>| NonatomicEvent::new(exec, members).expect("valid members");
    let giant = mk((0..procs).flat_map(|p| take(p, 3)).collect());
    let tiny = mk(take(0, 1));
    let sets: [Vec<NonatomicEvent>; 3] = [
        vec![],
        vec![giant.clone()],
        vec![giant.clone(), tiny.clone(), giant, tiny],
    ];
    for events in sets {
        let reference = Detector::new(exec, events.clone());
        let ref_reports = reference.all_pairs();
        prop_assert_eq!(
            ref_reports.len(),
            events.len() * events.len().saturating_sub(1)
        );
        for mode in [EvalMode::Counted, EvalMode::Fused, EvalMode::Batched] {
            for tile in [1usize, 7, DEFAULT_TILE, events.len() + 13] {
                let d = Detector::new(exec, events.clone())
                    .with_mode(mode)
                    .with_tile(tile);
                for rep in &d.all_pairs() {
                    let r = ref_reports
                        .iter()
                        .find(|q| q.x == rep.x && q.y == rep.y)
                        .expect("pair present in reference");
                    prop_assert_eq!(
                        r.relations,
                        rep.relations,
                        "mode {:?}, tile {}: pair ({}, {})",
                        mode,
                        tile,
                        rep.x,
                        rep.y
                    );
                }
                for threads in [1usize, 2, 4, 8] {
                    prop_assert_eq!(
                        &d.all_pairs(),
                        &d.all_pairs_parallel(threads),
                        "mode {:?}, tile {}, {} threads on {} events",
                        mode,
                        tile,
                        threads,
                        events.len()
                    );
                }
            }
        }
    }
    Ok(())
}

/// Metering must not perturb anything: a fault-injected pipeline run
/// with the no-op meter and one run with the counting meter produce
/// identical `FaultLog`s and byte-identical pair reports, and the
/// counting meter's aggregate is itself deterministic across runs.
fn check_metering_transparent(seed: u64) -> Result<(), TestCaseError> {
    let pipeline = |meter_on: bool| -> (FaultLog, Vec<PairReport>, Option<_>) {
        let sim = random_scripts(seed, 4, 12, 3).with_faults(FaultPlan::from_seed(seed));
        let r = sim.run().expect("fault-tolerant runs complete");
        let events: Vec<_> = r
            .label_names()
            .iter()
            .filter_map(|l| intervals::by_label(&r, l).ok())
            .collect();
        let d = Detector::new(&r.exec, events).with_mode(EvalMode::Counted);
        if meter_on {
            let m = CompareCounter::new();
            let reps = d.all_pairs_with(&m);
            (r.faults.clone(), reps, Some(m.snapshot(Relation::NAMES)))
        } else {
            (r.faults.clone(), d.all_pairs_with(&NoopMeter), None)
        }
    };
    let (faults_noop, reports_noop, _) = pipeline(false);
    let (faults_counted, reports_counted, snap_a) = pipeline(true);
    let (_, _, snap_b) = pipeline(true);
    prop_assert_eq!(
        faults_noop,
        faults_counted,
        "FaultLog diverged under metering"
    );
    prop_assert_eq!(
        reports_noop,
        reports_counted,
        "reports diverged under metering"
    );
    prop_assert_eq!(
        snap_a,
        snap_b,
        "meter aggregate nondeterministic across runs"
    );
    Ok(())
}

/// The parallel counter merge is order-independent: for any thread
/// count and either mode, the aggregated `MeterSnapshot` equals the
/// sequential one (mirrors `check_parallel_determinism` for reports).
fn check_meter_merge_determinism(w: &Workload) -> Result<(), TestCaseError> {
    for mode in [EvalMode::Counted, EvalMode::Fused, EvalMode::Batched] {
        let d = Detector::new(&w.exec, w.events.clone()).with_mode(mode);
        let base = CompareCounter::new();
        let seq_reports = d.all_pairs_with(&base);
        let baseline = base.snapshot(Relation::NAMES);
        for threads in [1, 2, 8] {
            let m = CompareCounter::new();
            let par = d.all_pairs_parallel_with(threads, &m);
            prop_assert_eq!(
                &seq_reports,
                &par,
                "mode {:?}, {} threads: metered reports diverged",
                mode,
                threads
            );
            prop_assert_eq!(
                &baseline,
                &m.snapshot(Relation::NAMES),
                "mode {:?}, {} threads: merged meter diverged from sequential",
                mode,
                threads
            );
        }
    }
    Ok(())
}

/// Drive an [`IncrementalDetector`] over `w`'s intervals in a seeded
/// arrival interleaving: per-process event order is fixed (the delivery
/// constraint the detector documents), but which process delivers next
/// — and the order intervals close in — is chosen by `shuffle_seed`.
fn drive_shuffled(w: &Workload, shuffle_seed: u64) -> IncrementalDetector<'_> {
    let n = w.exec.num_processes();
    let mut queues: Vec<Vec<(EventId, usize)>> = vec![Vec::new(); n];
    for (k, ev) in w.events.iter().enumerate() {
        for e in ev.events() {
            queues[e.process.idx()].push((e, k));
        }
    }
    for q in &mut queues {
        q.sort_by_key(|(e, _)| e.index);
    }

    let mut det = IncrementalDetector::new(&w.exec);
    for ev in &w.events {
        det.add_interval_declared(ev.node_set());
    }
    let mut heads = vec![0usize; n];
    let mut remaining: usize = queues.iter().map(Vec::len).sum();
    let mut step = 0u64;
    while remaining > 0 {
        // Pick the next nonempty per-process queue pseudo-randomly.
        let mut pick = (mix(shuffle_seed, 41, step) % n as u64) as usize;
        step += 1;
        while heads[pick] >= queues[pick].len() {
            pick = (pick + 1) % n;
        }
        let (e, k) = queues[pick][heads[pick]];
        heads[pick] += 1;
        remaining -= 1;
        det.arrive(k, e);
    }
    // Close in a seeded permutation as well; closing is flag-only.
    let mut order: Vec<usize> = (0..w.events.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(
            i,
            (mix(shuffle_seed, 43, i as u64) % (i as u64 + 1)) as usize,
        );
    }
    for k in order {
        det.close(k);
    }
    det
}

/// Incremental determinism: every arrival interleaving that respects
/// per-process delivery order converges to the same final verdicts and
/// the same settled masks as the canonical
/// [`IncrementalDetector::replay`] over the execution's linearization —
/// which in turn matches the batch detector. The comparison meters are
/// deterministic per *stream* (replaying the identical interleaving
/// reproduces them bit-for-bit; there is no hidden iteration-order
/// nondeterminism), but different interleavings legitimately spend
/// different touch-set work before pairs settle, so meters are only
/// compared between reruns of the same stream.
fn check_incremental_order_determinism(
    w: &Workload,
    shuffle_seed: u64,
) -> Result<(), TestCaseError> {
    let canonical = IncrementalDetector::replay(&w.exec, &w.events);
    let shuffled = drive_shuffled(w, shuffle_seed);
    let batch = Detector::new(&w.exec, w.events.clone()).with_mode(EvalMode::Batched);
    let m = w.events.len();
    for x in 0..m {
        for y in 0..m {
            if x == y {
                continue;
            }
            let want = canonical.relations(x, y);
            prop_assert_eq!(
                shuffled.relations(x, y),
                want,
                "verdict for ({}, {}) depends on arrival interleaving (shuffle {})",
                x,
                y,
                shuffle_seed
            );
            prop_assert_eq!(
                shuffled.settled_mask(x, y),
                canonical.settled_mask(x, y),
                "settled mask for ({}, {}) depends on arrival interleaving",
                x,
                y
            );
            prop_assert!(shuffled.pair_settled(x, y));
            prop_assert_eq!(
                want.expect("complete intervals are non-empty"),
                batch
                    .pair(x, y)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?
                    .relations
            );
        }
    }
    // Meter determinism: the identical stream replayed from scratch
    // reproduces the counters exactly, for both the shuffled
    // interleaving and the canonical linearization.
    let shuffled2 = drive_shuffled(w, shuffle_seed);
    prop_assert_eq!(
        shuffled.comparisons(),
        shuffled2.comparisons(),
        "comparison meter not reproducible for shuffle {}",
        shuffle_seed
    );
    prop_assert_eq!(
        shuffled.combo_scans(),
        shuffled2.combo_scans(),
        "combo-scan meter not reproducible for shuffle {}",
        shuffle_seed
    );
    let canonical2 = IncrementalDetector::replay(&w.exec, &w.events);
    prop_assert_eq!(canonical.comparisons(), canonical2.comparisons());
    prop_assert_eq!(canonical.combo_scans(), canonical2.combo_scans());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_unfused_naive_agree(
        seed in 0u64..10_000,
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_workload(&w)?;
    }

    #[test]
    fn parallel_pairs_deterministic(
        seed in 0u64..10_000,
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_parallel_determinism(&w)?;
    }

    #[test]
    fn metering_is_transparent(seed in 0u64..10_000) {
        check_metering_transparent(seed)?;
    }

    #[test]
    fn batched_handles_adversarial_shapes(
        seed in 0u64..10_000,
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_batched_shapes(&w.exec)?;
    }

    #[test]
    fn meter_merge_is_order_independent(
        seed in 0u64..10_000,
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_meter_merge_determinism(&w)?;
    }

    #[test]
    fn tiled_engine_equivalent_at_every_width(
        seed in 0u64..10_000,
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_tiled_equivalence(&w)?;
    }

    #[test]
    fn incremental_order_deterministic(
        seed in 0u64..10_000,
        shuffle_seed in any::<u64>(),
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_incremental_order_determinism(&w, shuffle_seed)?;
    }

    #[test]
    fn tiled_engine_survives_degenerate_shapes(
        seed in 0u64..10_000,
        processes in 3usize..7,
        events_per_process in 5usize..10,
    ) {
        let w = gen_workload(seed, processes, events_per_process);
        check_tiled_degenerate_shapes(&w.exec)?;
    }
}

/// One deterministic run so plain `cargo test` exercises the property
/// even if proptest were filtered out.
#[test]
fn fixed_seed_smoke() {
    let w = gen_workload(0xC0FFEE, 5, 8);
    check_workload(&w).unwrap();
    check_parallel_determinism(&w).unwrap();
    check_meter_merge_determinism(&w).unwrap();
    check_batched_shapes(&w.exec).unwrap();
    check_metering_transparent(0xC0FFEE).unwrap();
    check_tiled_equivalence(&w).unwrap();
    check_tiled_degenerate_shapes(&w.exec).unwrap();
    check_incremental_order_determinism(&w, 0xFEED_FACE).unwrap();
}
