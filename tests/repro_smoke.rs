//! Smoke tests for every reproduction experiment: each must run and
//! report internal validation success (no "BUG" markers), so the
//! `repro` binary's output is itself covered by `cargo test`.

use synchrel_bench::experiments;

#[test]
fn table1_reports_full_agreement() {
    let s = experiments::table1::run(1, 40);
    assert!(s.contains("linear comparisons"), "{s}");
    assert!(s.contains("YES"), "{s}");
    assert!(!s.contains("BUG"), "{s}");
}

#[test]
fn table2_reports_match() {
    let s = experiments::table2::run();
    assert!(s.contains("∩⇓X"), "{s}");
    assert!(!s.contains("BUG"), "{s}");
    assert!(s.contains("100/100"), "{s}");
}

#[test]
fn figures_render() {
    let f1 = experiments::figures::fig1();
    assert!(f1.contains("P0") && f1.contains("L_X"), "{f1}");
    let f2 = experiments::figures::fig2();
    assert!(f2.contains("|4"), "{f2}");
    let f3 = experiments::figures::fig3();
    assert!(f3.contains("U_X"), "{f3}");
}

#[test]
fn thm19_reproduces() {
    let s = experiments::thm19::run(1);
    assert!(s.contains("YES"), "{s}");
    assert!(!s.contains("BUG"), "{s}");
}

#[test]
fn thm20_reports_discrepancy_honestly() {
    let s = experiments::thm20::run(1, 120);
    assert!(s.contains("Theorem 20 reproduces"), "{s}");
    assert!(s.contains("Discrepancy"), "{s}");
}

#[test]
fn problem4_runs() {
    let s = experiments::problem4::run(1);
    assert!(s.contains("ring"), "{s}");
    assert!(s.contains("agree"), "{s}");
}

#[test]
fn pairs_throughput_runs() {
    // 64 intervals = 4032 pairs: big enough to exercise the scaling
    // section honestly, small enough for a debug-build smoke test.
    let s = experiments::pairs::run_to(1, None, 64);
    assert!(s.contains("seq fused p/s"), "{s}");
    assert!(s.contains("ring"), "{s}");
    assert!(s.contains("thread sweep skipped for ring"), "{s}");
    assert!(s.contains("scaling: seeded-scaling"), "{s}");
    assert!(s.contains("speedup ×8/×1"), "{s}");
}

#[test]
fn setup_amortizes() {
    let s = experiments::setup::run(1);
    assert!(s.contains("one-time costs"), "{s}");
}

#[test]
fn scaling_shows_growing_gap() {
    let s = experiments::scaling::run(1);
    assert!(s.contains("shape check"), "{s}");
    assert!(s.contains("64"), "{s}");
}

#[test]
fn profiles_all_realized_and_consistent() {
    let s = experiments::profiles::run(1, 100);
    assert!(s.contains("YES"), "{s}");
    assert!(s.contains("realized 11 of the 11"), "{s}");
}
