//! Property suite for the relation composition calculus
//! (`synchrel_core::compose`): every derived entry must be sound on
//! random disjoint triples `(X, Y, Z)` of nonatomic events.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use synchrel_core::{compose, implies, naive_relation, NonatomicEvent, Relation};
use synchrel_sim::workload::{random, random_nonatomic, RandomConfig};

fn draw_triple(
    seed: u64,
    processes: usize,
) -> Option<(
    synchrel_core::Execution,
    NonatomicEvent,
    NonatomicEvent,
    NonatomicEvent,
)> {
    let w = random(&RandomConfig {
        processes,
        events_per_process: 10,
        message_prob: 0.4,
        seed,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7121);
    let x = random_nonatomic(&w.exec, &mut rng, 1 + (seed as usize % processes), 2);
    for _ in 0..40 {
        let y = random_nonatomic(&w.exec, &mut rng, 1 + (seed as usize / 3 % processes), 2);
        if x.overlaps(&y) {
            continue;
        }
        for _ in 0..40 {
            let z = random_nonatomic(&w.exec, &mut rng, 1 + (seed as usize / 7 % processes), 2);
            if !z.overlaps(&x) && !z.overlaps(&y) {
                return Some((w.exec, x, y, z));
            }
        }
        return None;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn composition_sound(seed in any::<u64>(), processes in 3..8usize) {
        let Some((exec, x, y, z)) = draw_triple(seed, processes) else {
            return Ok(());
        };
        for ra in Relation::ALL {
            if !naive_relation(&exec, ra, &x, &y) {
                continue;
            }
            for rb in Relation::ALL {
                if !naive_relation(&exec, rb, &y, &z) {
                    continue;
                }
                if let Some(rc) = compose(ra, rb) {
                    prop_assert!(
                        naive_relation(&exec, rc, &x, &z),
                        "{}∘{} ⟹ {} violated (seed {seed})",
                        ra, rb, rc
                    );
                }
            }
        }
    }

    #[test]
    fn composition_consistent_with_hierarchy(
        a in 0..8usize, b in 0..8usize,
    ) {
        // Strengthening either operand can only strengthen (or keep) the
        // conclusion: if a' ⟹ a and b' ⟹ b and compose(a,b) = c, then
        // compose(a',b') must imply c.
        let ra = Relation::ALL[a];
        let rb = Relation::ALL[b];
        if let Some(rc) = compose(ra, rb) {
            for rap in Relation::ALL {
                if !implies(rap, ra) {
                    continue;
                }
                for rbp in Relation::ALL {
                    if !implies(rbp, rb) {
                        continue;
                    }
                    let rcp = compose(rap, rbp);
                    prop_assert!(
                        rcp.is_some_and(|r| implies(r, rc)),
                        "compose({rap},{rbp}) = {rcp:?} should imply {rc}"
                    );
                }
            }
        }
    }
}
