//! The Theorem 19/20 reproduction discrepancy, made precise.
//!
//! Theorem 20 claims R2' and R3 are evaluable in `min(|N_X|, |N_Y|)`
//! integer comparisons, via Key Idea 2: a violation of `≪(↓Y, X⇑)` is
//! always visible at a node of `N_X` and at a node of `N_Y`. For the cut
//! pairs of R2' (`∪⇓Y ≪̸ ∪⇑X`) and R3 (`∩⇓Y ≪̸ ∩⇑X`) the claim fails in
//! one direction. These tests establish the *strong* form of the
//! failure: two executions that are **indistinguishable** in every input
//! a node-restricted test per Key Idea 2 may read — the `N_X`
//! (resp. `N_Y`) components of **both** operands' condensation cuts and
//! extremal positions, plus node sets — yet on which the relation's
//! truth value differs. Hence *no* test restricted to those inputs can
//! be sound, and
//! the best achievable bounds are `|N_Y|` for R2' and `|N_X|` for R3
//! (which this library implements). See `EXPERIMENTS.md`.

use synchrel_core::{
    naive_relation, Evaluator, EventSummary, ExecutionBuilder, NonatomicEvent, Relation, ScanSet,
};

/// Collect the components of a summary's four cuts at `nodes`.
fn components(s: &EventSummary, nodes: &[usize]) -> Vec<u32> {
    let mut v = Vec::new();
    for &i in nodes {
        v.push(s.c1().count(i));
        v.push(s.c2().count(i));
        v.push(s.c3().count(i));
        v.push(s.c4().count(i));
        v.push(s.lo(i));
        v.push(s.hi(i));
    }
    v
}

/// R2' counterexample pair.
///
/// Execution A: `y₁@P2` hears from both `x₁@P0` and `x₂@P1`; a second
/// `Y` member `w@P3` hears nothing. `∃y∀x: x ≺ y` **holds** (witness
/// `y₁`).
///
/// Execution B: `y₁'@P2` hears only `x₁`; `y₂@P3` hears only `x₂`.
/// R2' **fails**.
///
/// All `N_X`-side inputs coincide.
#[test]
fn r2p_has_no_sound_nx_side_test() {
    // --- Execution A -----------------------------------------------------
    let mut ba = ExecutionBuilder::new(4);
    let (xa1, ma0) = ba.send(0);
    let (xa2, ma1) = ba.send(1);
    ba.recv(2, ma0).unwrap();
    ba.recv(2, ma1).unwrap();
    let ya1 = ba.internal(2); // pos 4, knows both x's
    let wa = ba.internal(3); // pos 2, knows nothing
    let ea = ba.build().unwrap();
    let x_a = NonatomicEvent::new(&ea, [xa1, xa2]).unwrap();
    let y_a = NonatomicEvent::new(&ea, [ya1, wa]).unwrap();

    // --- Execution B -----------------------------------------------------
    let mut bb = ExecutionBuilder::new(4);
    let (xb1, mb0) = bb.send(0);
    let (xb2, mb1) = bb.send(1);
    bb.recv(2, mb0).unwrap();
    bb.internal(2); // padding so y₁' sits at pos 4, like y₁
    let yb1 = bb.internal(2); // pos 4, knows only x₁
    let yb2 = bb.recv(3, mb1).unwrap(); // pos 2, knows only x₂
    let eb = bb.build().unwrap();
    let x_b = NonatomicEvent::new(&eb, [xb1, xb2]).unwrap();
    let y_b = NonatomicEvent::new(&eb, [yb1, yb2]).unwrap();

    // Ground truth differs.
    assert!(
        naive_relation(&ea, Relation::R2p, &x_a, &y_a),
        "A: R2' holds"
    );
    assert!(
        !naive_relation(&eb, Relation::R2p, &x_b, &y_b),
        "B: R2' fails"
    );

    // Everything an N_X-side test may read is identical.
    let eva = Evaluator::new(&ea);
    let evb = Evaluator::new(&eb);
    let (sxa, sya) = (eva.summarize(&x_a), eva.summarize(&y_a));
    let (sxb, syb) = (evb.summarize(&x_b), evb.summarize(&y_b));
    let nx = sxa.node_set().to_vec();
    assert_eq!(nx, sxb.node_set(), "same N_X");
    assert_eq!(sya.node_set(), syb.node_set(), "same N_Y");
    assert_eq!(
        components(&sya, &nx),
        components(&syb, &nx),
        "Y's cut components and extremes at N_X nodes coincide"
    );
    assert_eq!(
        components(&sxa, &nx),
        components(&sxb, &nx),
        "X's cut components and extremes at N_X nodes coincide"
    );
    // N_Y-side extremes of Y also coincide (the sound test reads these).
    let ny = sya.node_set().to_vec();
    for &j in &ny {
        assert_eq!(sya.lo(j), syb.lo(j));
        assert_eq!(sya.hi(j), syb.hi(j));
    }

    // Consequently the paper's N_X scan answers identically on both —
    // and is therefore wrong on one of them…
    let a_nx = eva
        .eval_scanned(Relation::R2p, &sxa, &sya, ScanSet::NodesOfX)
        .unwrap();
    let b_nx = evb
        .eval_scanned(Relation::R2p, &sxb, &syb, ScanSet::NodesOfX)
        .unwrap();
    assert_eq!(a_nx.holds, b_nx.holds, "any N_X-side test must tie");
    assert!(!a_nx.holds, "…here it misses A's witness");

    // …while the sound N_Y evaluation is exact on both.
    assert!(eva.eval(Relation::R2p, &sxa, &sya));
    assert!(!evb.eval(Relation::R2p, &sxb, &syb));
}

/// R3 counterexample pair (the time-mirrored construction).
///
/// Execution A: `x₁@P0` precedes both `y₁@P2` and `y₂@P3`; a second `X`
/// member `xw@P1` precedes nothing. `∃x∀y: x ≺ y` **holds**.
///
/// Execution B: `x₁` precedes only `y₁`; `xw` precedes only `y₂`.
/// R3 **fails**.
///
/// All `N_Y`-side inputs coincide.
#[test]
fn r3_has_no_sound_ny_side_test() {
    // --- Execution A -----------------------------------------------------
    let mut ba = ExecutionBuilder::new(4);
    let (xa1, ma0) = ba.send(0); // x₁, pos 2
    let (_, ma1) = ba.send(0); // second send at P0 carries x₁ onward
    let xaw = ba.internal(1); // xw, pos 2, precedes nothing
    let ya1 = ba.recv(2, ma0).unwrap(); // pos 2
    let ya2 = ba.recv(3, ma1).unwrap(); // pos 2, after x₁ transitively
    let ea = ba.build().unwrap();
    let x_a = NonatomicEvent::new(&ea, [xa1, xaw]).unwrap();
    let y_a = NonatomicEvent::new(&ea, [ya1, ya2]).unwrap();

    // --- Execution B -----------------------------------------------------
    let mut bb = ExecutionBuilder::new(4);
    let (xb1, mb0) = bb.send(0); // x₁, pos 2
    bb.internal(0); // padding: P0 has two app events in both executions
    let (xbw, mb1) = bb.send(1); // xw, pos 2
    let yb1 = bb.recv(2, mb0).unwrap(); // pos 2, hears only x₁
    let yb2 = bb.recv(3, mb1).unwrap(); // pos 2, hears only xw
    let eb = bb.build().unwrap();
    let x_b = NonatomicEvent::new(&eb, [xb1, xbw]).unwrap();
    let y_b = NonatomicEvent::new(&eb, [yb1, yb2]).unwrap();

    assert!(naive_relation(&ea, Relation::R3, &x_a, &y_a), "A: R3 holds");
    assert!(
        !naive_relation(&eb, Relation::R3, &x_b, &y_b),
        "B: R3 fails"
    );

    let eva = Evaluator::new(&ea);
    let evb = Evaluator::new(&eb);
    let (sxa, sya) = (eva.summarize(&x_a), eva.summarize(&y_a));
    let (sxb, syb) = (evb.summarize(&x_b), evb.summarize(&y_b));
    let ny = sya.node_set().to_vec();
    assert_eq!(ny, syb.node_set(), "same N_Y");
    assert_eq!(sxa.node_set(), sxb.node_set(), "same N_X");
    assert_eq!(
        components(&sxa, &ny),
        components(&sxb, &ny),
        "X's cut components and extremes at N_Y nodes coincide"
    );
    assert_eq!(
        components(&sya, &ny),
        components(&syb, &ny),
        "Y's summaries at its own nodes coincide"
    );
    for &i in sxa.node_set() {
        assert_eq!(sxa.lo(i), sxb.lo(i));
        assert_eq!(sxa.hi(i), sxb.hi(i));
    }

    let a_ny = eva
        .eval_scanned(Relation::R3, &sxa, &sya, ScanSet::NodesOfY)
        .unwrap();
    let b_ny = evb
        .eval_scanned(Relation::R3, &sxb, &syb, ScanSet::NodesOfY)
        .unwrap();
    assert_eq!(a_ny.holds, b_ny.holds, "any N_Y-side test must tie");
    assert!(!a_ny.holds, "…here it misses A's witness");

    assert!(eva.eval(Relation::R3, &sxa, &sya));
    assert!(!evb.eval(Relation::R3, &sxb, &syb));
}

/// The discrepancy never touches the six relations whose Theorem-20
/// bounds do reproduce: on the same counterexample executions, both
/// restricted scans agree with ground truth for R1/R1'/R4/R4'.
#[test]
fn min_relations_unaffected_on_counterexamples() {
    let mut ba = ExecutionBuilder::new(4);
    let (xa1, ma0) = ba.send(0);
    let (xa2, ma1) = ba.send(1);
    ba.recv(2, ma0).unwrap();
    ba.recv(2, ma1).unwrap();
    let ya1 = ba.internal(2);
    let wa = ba.internal(3);
    let ea = ba.build().unwrap();
    let x = NonatomicEvent::new(&ea, [xa1, xa2]).unwrap();
    let y = NonatomicEvent::new(&ea, [ya1, wa]).unwrap();
    let ev = Evaluator::new(&ea);
    let sx = ev.summarize(&x);
    let sy = ev.summarize(&y);
    for rel in [Relation::R1, Relation::R1p, Relation::R4, Relation::R4p] {
        let ground = naive_relation(&ea, rel, &x, &y);
        for scan in [ScanSet::NodesOfX, ScanSet::NodesOfY, ScanSet::FullP] {
            assert_eq!(
                ev.eval_scanned(rel, &sx, &sy, scan).unwrap().holds,
                ground,
                "{rel} {scan:?}"
            );
        }
    }
}
