//! Property suite for the implication lattice (`hierarchy::IMPLIES`),
//! the structure the incremental detector's pruning masks are derived
//! from:
//!
//! * **reflexive + transitively closed** — the table is a preorder, so
//!   closing a verdict through it can never miss a consequence;
//! * **edges are sound on executions** — on randomized executions,
//!   whenever `a(X, Y)` holds under the naive quantifier-expansion
//!   semantics, every `b` with `implies(a, b)` holds too;
//! * **the fused kernel respects the lattice per combo** — each proxy
//!   combo's 8-bit verdict slice is closed under implication, for both
//!   the holding and (contrapositively) the failing relations.

use proptest::prelude::*;

use synchrel_core::{implies, naive_relation, Detector, NonatomicEvent, ProxyRelation, Relation};
use synchrel_sim::workload::{random_with_events, RandomConfig, Workload};

#[test]
fn implies_is_reflexive() {
    for r in Relation::ALL {
        assert!(implies(r, r), "{r} must imply itself");
    }
}

#[test]
fn implies_is_transitively_closed() {
    for a in Relation::ALL {
        for b in Relation::ALL {
            for c in Relation::ALL {
                if implies(a, b) && implies(b, c) {
                    assert!(
                        implies(a, c),
                        "{a} ⟹ {b} ⟹ {c} but the table misses {a} ⟹ {c}"
                    );
                }
            }
        }
    }
}

/// The lattice has exactly the paper's shape: R1 ≡ R1' at the top,
/// R4 ≡ R4' at the bottom, the two chains R2' ⟹ R2 and R3 ⟹ R3'
/// between them, and nothing across the chains.
#[test]
fn implies_matches_paper_lattice() {
    use Relation as R;
    let closure = |a: R| -> Vec<R> { R::ALL.into_iter().filter(|&b| implies(a, b)).collect() };
    assert_eq!(closure(R::R1).len(), 8);
    assert_eq!(closure(R::R1p).len(), 8);
    assert_eq!(closure(R::R2p), vec![R::R2, R::R2p, R::R4, R::R4p]);
    assert_eq!(closure(R::R2), vec![R::R2, R::R4, R::R4p]);
    assert_eq!(closure(R::R3), vec![R::R3, R::R3p, R::R4, R::R4p]);
    assert_eq!(closure(R::R3p), vec![R::R3p, R::R4, R::R4p]);
    assert_eq!(closure(R::R4), vec![R::R4, R::R4p]);
    assert_eq!(closure(R::R4p), vec![R::R4, R::R4p]);
    // Nothing across the chains, in either direction.
    for (a, b) in [
        (R::R2, R::R3p),
        (R::R2p, R::R3),
        (R::R3, R::R2),
        (R::R3p, R::R2p),
    ] {
        assert!(!implies(a, b), "{a} must not imply {b}");
    }
}

fn gen_workload(seed: u64, processes: usize) -> Workload {
    random_with_events(
        &RandomConfig {
            processes,
            events_per_process: 8,
            message_prob: 0.4,
            seed,
        },
        6,
        (processes / 2).max(1),
        2,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every edge of the table holds on concrete executions: under the
    /// naive semantics, `a(X, Y)` never holds while an implied `b(X, Y)`
    /// fails — over random executions and random interval pairs.
    #[test]
    fn edges_sound_on_random_executions(seed in any::<u64>(), processes in 2..6usize) {
        let w = gen_workload(seed, processes);
        let truth: Vec<Vec<[bool; 8]>> = w
            .events
            .iter()
            .map(|x| {
                w.events
                    .iter()
                    .map(|y| {
                        let mut row = [false; 8];
                        for (k, r) in Relation::ALL.into_iter().enumerate() {
                            row[k] = naive_relation(&w.exec, r, x, y);
                        }
                        row
                    })
                    .collect()
            })
            .collect();
        for (xi, x_row) in truth.iter().enumerate() {
            for (yi, row) in x_row.iter().enumerate() {
                if xi == yi {
                    continue;
                }
                for (ka, a) in Relation::ALL.into_iter().enumerate() {
                    if !row[ka] {
                        continue;
                    }
                    for (kb, b) in Relation::ALL.into_iter().enumerate() {
                        if implies(a, b) {
                            prop_assert!(
                                row[kb],
                                "{a}(X{xi}, Y{yi}) holds but implied {b} does not (seed {seed})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The fused detector's 32-bit verdicts are closed under the
    /// lattice within every proxy combo — the invariant the incremental
    /// detector's TRUE/FALSE pruning masks rely on.
    #[test]
    fn detector_verdicts_closed_under_lattice(seed in any::<u64>(), processes in 2..6usize) {
        let w = gen_workload(seed, processes);
        let det = Detector::new(&w.exec, w.events.clone());
        for report in det.all_pairs() {
            // Proxies of per-node intervals are non-empty, so the
            // non-emptiness precondition of every edge is met.
            for pr in ProxyRelation::all() {
                if !report.relations.contains(pr) {
                    continue;
                }
                for b in Relation::ALL {
                    if implies(pr.rel, b) {
                        let implied = ProxyRelation::new(b, pr.x_proxy, pr.y_proxy);
                        prop_assert!(
                            report.relations.contains(implied),
                            "pair ({}, {}): {pr:?} holds but {implied:?} does not (seed {seed})",
                            report.x,
                            report.y
                        );
                    }
                }
            }
        }
    }

    /// Closing a random *subset* of held relations through the lattice
    /// always lands inside the actually-held set — i.e. the table never
    /// manufactures a verdict the execution does not support.
    #[test]
    fn closure_of_held_subset_stays_held(seed in any::<u64>(), mask in 0u8..=255) {
        let w = gen_workload(seed, 3);
        let x = &w.events[0];
        let y = &w.events[1];
        let held: Vec<Relation> = Relation::ALL
            .into_iter()
            .filter(|&r| naive_relation(&w.exec, r, x, y))
            .collect();
        let picked: Vec<Relation> = held
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << (k % 8)) != 0)
            .map(|(_, &r)| r)
            .collect();
        for a in picked {
            for b in Relation::ALL {
                if implies(a, b) {
                    prop_assert!(
                        held.contains(&b),
                        "closure of held {a} left the held set at {b} (seed {seed})"
                    );
                }
            }
        }
    }
}

/// `NonatomicEvent` is exercised indirectly above; keep a direct
/// minimal-witness check that the strict edges are strict — `R2` can
/// hold without `R2'`, and `R3'` without `R3` — so the lattice is not
/// accidentally collapsed.
#[test]
fn strict_edges_have_witnesses() {
    use synchrel_core::ExecutionBuilder;
    // Two-process execution: x on P0, y spanning both processes with
    // only one member causally after x.
    let mut bld = ExecutionBuilder::new(2);
    let (x, m) = bld.send(0);
    let y1 = bld.internal(1);
    let y2 = bld.recv(1, m).unwrap();
    let e = bld.build().unwrap();
    let xx = NonatomicEvent::new(&e, [x]).unwrap();
    let yy = NonatomicEvent::new(&e, [y1, y2]).unwrap();
    // x precedes y2 but not y1: R2 (∀x∃y) holds, R2' (∃y∀x) also holds
    // here since |X| = 1 — use the reverse direction for strictness.
    assert!(naive_relation(&e, Relation::R2, &xx, &yy));
    // R1 requires x ≺ every y; y1 is concurrent with x.
    assert!(!naive_relation(&e, Relation::R1, &xx, &yy));
    assert!(!implies(Relation::R2, Relation::R1));
}
