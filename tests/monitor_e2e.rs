//! End-to-end monitor tests: scenarios → specs → offline checker, and
//! online-vs-offline agreement on randomized executions.

use proptest::prelude::*;

use synchrel_core::{naive_relation, EventKind, NonatomicEvent, Relation};
use synchrel_monitor::{mutex, Checker, Condition, OnlineMonitor, Spec, Verdict};
use synchrel_sim::intervals::per_process_phases;
use synchrel_sim::scenario;
use synchrel_sim::workload::{random, RandomConfig};

#[test]
fn air_defence_spec_passes() {
    let s = scenario::air_defence().unwrap();
    let ch = Checker::new(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let spec = Spec::new("engagement-rules")
        .require(
            "detect-feeds-assessment",
            Condition::rel(Relation::R2, "detect", "assess"),
        )
        .require(
            "assessment-precedes-engagement",
            Condition::rel(Relation::R1, "assess", "engage_a"),
        )
        .require(
            "exclusive-engagements",
            Condition::mutex(["engage_a", "engage_b"]),
        )
        .require(
            "doctrine-order",
            Condition::ordered(["assess", "engage_a", "engage_b"]),
        );
    let report = ch.check(&spec);
    assert!(report.all_hold(), "{report}");
}

#[test]
fn air_defence_mutex_via_checker_and_module_agree() {
    let s = scenario::air_defence().unwrap();
    let sections: Vec<(String, NonatomicEvent)> = s
        .actions
        .iter()
        .filter(|(n, _)| n.starts_with("engage"))
        .map(|(n, e)| (n.clone(), e.clone()))
        .collect();
    let rep = mutex::check_mutual_exclusion(&s.result.exec, &sections);
    assert!(rep.holds(), "{rep}");

    let ch = Checker::new(
        &s.result.exec,
        sections.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let (holds, _) = ch.eval(&Condition::mutex(["engage_a", "engage_b"]));
    assert_eq!(holds, rep.holds());
}

#[test]
fn multimedia_presentation_chain() {
    let s = scenario::multimedia(4).unwrap();
    let ch = Checker::new(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let spec = Spec::new("playback").require(
        "ordered-presentations",
        Condition::ordered(["present0", "present1", "present2", "present3"]),
    );
    assert!(ch.check(&spec).all_hold());
}

#[test]
fn process_control_violation_detected() {
    // Deliberately wrong spec: actuation cannot precede its own samples.
    let s = scenario::process_control(2).unwrap();
    let ch = Checker::new(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let spec = Spec::new("backwards").require(
        "actuate-before-sample",
        Condition::rel(Relation::R1, "actuate0", "sample0"),
    );
    let rep = ch.check(&spec);
    assert!(!rep.all_hold());
    assert_eq!(rep.violations(), vec!["actuate-before-sample"]);
    assert!(rep.conditions[0].detail.contains("witness"), "{rep}");
}

/// Replay a random execution through the online monitor (labelling each
/// per-process phase) and compare every final verdict with the offline
/// naive evaluation.
fn online_matches_offline(seed: u64, processes: usize) -> Result<(), TestCaseError> {
    let w = random(&RandomConfig {
        processes,
        events_per_process: 8,
        message_prob: 0.35,
        seed,
    });
    let phases = per_process_phases(&w.exec, 3);
    prop_assume!(phases.len() >= 2);
    // Map each event to its phase label.
    let label_of =
        |e: synchrel_core::EventId| -> Option<usize> { phases.iter().position(|p| p.contains(e)) };
    let mut mon = OnlineMonitor::new(processes);
    let mut tokens: Vec<Option<synchrel_monitor::online::OnlineMsg>> = Vec::new();
    for &e in w.exec.app_order() {
        let labels: Vec<String> = label_of(e).map(|k| format!("ph{k}")).into_iter().collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let p = e.process.idx();
        match w.exec.kind(e) {
            EventKind::Internal => mon.internal(p, &refs).unwrap(),
            EventKind::Send { msg } => {
                let t = mon.send(p, &refs).unwrap();
                let mi = msg as usize;
                if tokens.len() <= mi {
                    tokens.resize(mi + 1, None);
                }
                tokens[mi] = Some(t);
            }
            EventKind::Recv { msg } => {
                let t = tokens[msg as usize].take().unwrap();
                mon.recv(p, t, &refs).unwrap();
            }
            EventKind::Initial | EventKind::Final => unreachable!(),
        }
    }
    for k in 0..phases.len() {
        mon.close(&format!("ph{k}"));
    }
    for (i, x) in phases.iter().enumerate() {
        for (j, y) in phases.iter().enumerate() {
            if i == j {
                continue;
            }
            for rel in Relation::ALL {
                let want = naive_relation(&w.exec, rel, x, y);
                let got = mon.check(rel, &format!("ph{i}"), &format!("ph{j}"));
                let expect = if want {
                    Verdict::Holds
                } else {
                    Verdict::Violated
                };
                prop_assert_eq!(got, expect, "{} (ph{}, ph{}) seed {}", rel, i, j, seed);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_verdicts_match_offline(seed in any::<u64>(), processes in 2..7usize) {
        online_matches_offline(seed, processes)?;
    }
}
