//! Trace-format integration tests: round-tripping executions and named
//! nonatomic events through JSON preserves causality and every relation
//! verdict.

use proptest::prelude::*;

use synchrel_core::{Detector, NonatomicEvent};
use synchrel_sim::format::TraceFile;
use synchrel_sim::workload::{self, RandomConfig};
use synchrel_sim::FaultPlan;

/// The offline build environment ships a non-functional `serde_json`
/// stub; JSON round-trip tests probe it at runtime and skip instead of
/// failing. Environments with the real crate run them in full.
fn serde_available() -> bool {
    serde_json::to_string(&0u32).is_ok()
}

macro_rules! skip_without_serde {
    () => {
        if !serde_available() {
            eprintln!("skipping: offline serde_json stub has no serializer");
            return;
        }
    };
}

#[test]
fn relations_survive_roundtrip() {
    skip_without_serde!();
    let w = workload::random_with_events(
        &RandomConfig {
            processes: 6,
            events_per_process: 20,
            message_prob: 0.3,
            seed: 99,
        },
        8,
        3,
        2,
    );
    let tf = TraceFile::capture(
        &w.exec,
        w.labels.iter().cloned().zip(w.events.iter().cloned()),
    );
    let json = tf.to_json().unwrap();
    let (exec2, intervals) = TraceFile::from_json(&json).unwrap().restore().unwrap();

    let d1 = Detector::new(&w.exec, w.events.clone());
    let evs2: Vec<NonatomicEvent> = intervals.into_iter().map(|(_, e)| e).collect();
    let d2 = Detector::new(&exec2, evs2);
    let r1 = d1.all_pairs();
    let r2 = d2.all_pairs();
    assert_eq!(r1, r2, "all 32 relations for all pairs survive");
}

#[test]
fn scenario_traces_roundtrip() {
    let s = synchrel_sim::scenario::process_control(3).unwrap();
    let tf = TraceFile::capture(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let (exec2, intervals) = tf.restore().unwrap();
    assert_eq!(exec2.num_processes(), s.result.exec.num_processes());
    assert_eq!(intervals.len(), s.actions.len());
}

/// A fault plan survives a JSON round-trip exactly — the seed, the
/// integer probabilities, and the partition schedule.
#[test]
fn fault_plan_roundtrip() {
    skip_without_serde!();
    for seed in [0u64, 4, 0xDEAD_BEEF, u64::MAX] {
        let plan = FaultPlan::from_seed(seed);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back, "seed {seed:#x}");
        // And the round-tripped plan is byte-for-byte re-serializable.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}

/// Re-running a fault-injected simulation from the same seed, with the
/// plan passed through JSON in between, captures a byte-identical
/// trace: same events, same causality, same labels, same times, same
/// fault log.
#[test]
fn fault_injected_rerun_is_byte_identical() {
    skip_without_serde!();
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let plan = FaultPlan::from_seed(seed);
        let json = serde_json::to_string(&plan).unwrap();
        let restored: FaultPlan = serde_json::from_str(&json).unwrap();

        let run = |plan: FaultPlan| {
            synchrel_sim::random_scripts(seed, 4, 10, 3)
                .with_faults(plan)
                .run()
                .unwrap()
        };
        let a = run(plan);
        let b = run(restored);

        assert_eq!(a.faults, b.faults, "fault logs diverged at seed {seed:#x}");
        assert_eq!(a.times, b.times, "event times diverged at seed {seed:#x}");
        assert_eq!(a.labels, b.labels, "labels diverged at seed {seed:#x}");
        let ta = TraceFile::capture(&a.exec, std::iter::empty());
        let tb = TraceFile::capture(&b.exec, std::iter::empty());
        assert_eq!(
            ta.to_json().unwrap(),
            tb.to_json().unwrap(),
            "serialized traces diverged at seed {seed:#x}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_traces_roundtrip(seed in any::<u64>(), processes in 2..7usize) {
        if !serde_available() {
            eprintln!("skipping: offline serde_json stub has no serializer");
            return Ok(());
        }
        let w = workload::random(&RandomConfig {
            processes,
            events_per_process: 10,
            message_prob: 0.4,
            seed,
        });
        let tf = TraceFile::capture(&w.exec, std::iter::empty());
        let json = tf.to_json().unwrap();
        let (exec2, _) = TraceFile::from_json(&json).unwrap().restore().unwrap();
        let all: Vec<_> = w.exec.all_events().collect();
        for &x in &all {
            for &y in &all {
                prop_assert_eq!(w.exec.precedes(x, y), exec2.precedes(x, y));
            }
        }
    }
}
