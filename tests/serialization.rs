//! Trace-format integration tests: round-tripping executions and named
//! nonatomic events through JSON preserves causality and every relation
//! verdict.

use proptest::prelude::*;

use synchrel_core::{Detector, NonatomicEvent};
use synchrel_sim::format::TraceFile;
use synchrel_sim::workload::{self, RandomConfig};

#[test]
fn relations_survive_roundtrip() {
    let w = workload::random_with_events(
        &RandomConfig {
            processes: 6,
            events_per_process: 20,
            message_prob: 0.3,
            seed: 99,
        },
        8,
        3,
        2,
    );
    let tf = TraceFile::capture(
        &w.exec,
        w.labels.iter().cloned().zip(w.events.iter().cloned()),
    );
    let json = tf.to_json().unwrap();
    let (exec2, intervals) = TraceFile::from_json(&json).unwrap().restore().unwrap();

    let d1 = Detector::new(&w.exec, w.events.clone());
    let evs2: Vec<NonatomicEvent> = intervals.into_iter().map(|(_, e)| e).collect();
    let d2 = Detector::new(&exec2, evs2);
    let r1 = d1.all_pairs();
    let r2 = d2.all_pairs();
    assert_eq!(r1, r2, "all 32 relations for all pairs survive");
}

#[test]
fn scenario_traces_roundtrip() {
    let s = synchrel_sim::scenario::process_control(3).unwrap();
    let tf = TraceFile::capture(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let (exec2, intervals) = tf.restore().unwrap();
    assert_eq!(exec2.num_processes(), s.result.exec.num_processes());
    assert_eq!(intervals.len(), s.actions.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_traces_roundtrip(seed in any::<u64>(), processes in 2..7usize) {
        let w = workload::random(&RandomConfig {
            processes,
            events_per_process: 10,
            message_prob: 0.4,
            seed,
        });
        let tf = TraceFile::capture(&w.exec, std::iter::empty());
        let json = tf.to_json().unwrap();
        let (exec2, _) = TraceFile::from_json(&json).unwrap().restore().unwrap();
        let all: Vec<_> = w.exec.all_events().collect();
        for &x in &all {
            for &y in &all {
                prop_assert_eq!(w.exec.precedes(x, y), exec2.precedes(x, y));
            }
        }
    }
}
