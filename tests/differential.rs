//! Differential conformance suite: randomized, fault-injected
//! executions cross-checked across **every** evaluator in the
//! workspace — the brute-force quantifier oracle, the Theorem-20 linear
//! conditions, the fused 32-relation kernel, both [`Detector`] modes,
//! and the online monitor under exact, perturbed, and lossy delivery.
//!
//! Every case is reproducible from a single `u64` seed; a failure
//! message prints the seed of the *shrunk* (smallest still-failing)
//! case, which re-runs byte-identically via
//! `run_case(&DiffCase::from_seed(seed))` or `synchrel fuzz --seed`.

use proptest::prelude::*;

use synchrel_monitor::differential::{run_case, run_seeds, DiffCase};

/// The headline sweep: ten thousand randomized fault-injected cases,
/// zero tolerated mismatches. Fault injection follows each seed's own
/// fault bit, so the sweep mixes quiet and faulty runs roughly 50/50.
#[test]
fn ten_thousand_randomized_cases_agree() {
    let stats = run_seeds(0xD1FF_0001, 10_000, None).unwrap_or_else(|m| {
        panic!(
            "differential mismatch — reproduce with seed {:#x}: {}",
            m.seed, m.detail
        )
    });
    assert_eq!(stats.cases, 10_000);
    // The sweep must be doing real work: the vast majority of cases
    // produce at least two labelled intervals to compare.
    assert!(
        stats.skipped < stats.cases / 4,
        "too many degenerate cases: {stats:?}"
    );
    assert!(
        stats.pairs > 10_000,
        "suspiciously little coverage: {stats:?}"
    );
}

/// Every case of this sweep injects faults (drops, duplicates, delays,
/// partitions, skew) regardless of the seed's fault bit.
#[test]
fn forced_fault_sweep_agrees() {
    let stats = run_seeds(0xFA17_5EED, 1_500, Some(true)).unwrap_or_else(|m| {
        panic!(
            "mismatch under forced faults — seed {:#x}: {}",
            m.seed, m.detail
        )
    });
    assert_eq!(stats.cases, 1_500);
}

/// Control sweep with faults forced off: the harness itself must not
/// depend on fault injection to agree.
#[test]
fn quiet_sweep_agrees() {
    let stats = run_seeds(0x0A1E_7000, 1_500, Some(false))
        .unwrap_or_else(|m| panic!("mismatch on quiet runs — seed {:#x}: {}", m.seed, m.detail));
    assert_eq!(stats.cases, 1_500);
}

/// A case re-runs byte-identically from its seed: the outcome (and any
/// mismatch it would report) is a pure function of the seed.
#[test]
fn cases_replay_identically_from_seed() {
    for seed in [0u64, 0x40, 0xFF, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        let a = run_case(&DiffCase::from_seed(seed));
        let b = run_case(&DiffCase::from_seed(seed));
        assert_eq!(a, b, "seed {seed:#x} not reproducible");
    }
}

/// Pinned regression seeds: size-code corners (smallest and largest
/// case shapes, fault bit both ways) plus past shrinker outputs.
#[test]
fn regression_corpus_agrees() {
    const CORPUS: &[u64] = &[
        0x00, // smallest quiet shape
        0x3F, // largest quiet shape
        0x40, // smallest faulty shape
        0x7F, // largest faulty shape
        0xFF, // all size bits set
        0xB16_B00B5 << 8 | 0x7F,
        0xCAFE_F00D << 8 | 0x40,
        0x0123_4567 << 8,
    ];
    for &seed in CORPUS {
        if let Err(m) = run_case(&DiffCase::from_seed(seed)) {
            panic!("regression seed {seed:#x} regressed: {m}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Free-seed property: any `u64` decodes to a case on which all
    /// evaluators agree.
    #[test]
    fn arbitrary_seed_agrees(seed in any::<u64>()) {
        if let Err(m) = run_case(&DiffCase::from_seed(seed)) {
            return Err(TestCaseError::fail(format!(
                "mismatch at seed {:#x}: {}",
                m.seed, m.detail
            )));
        }
    }
}
