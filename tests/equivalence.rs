//! Cross-crate equivalence suite: on randomized executions, the three
//! evaluation strategies — naive quantifier semantics, the
//! `|N_X|×|N_Y|` proxy baseline, and the paper's linear-time
//! conditions — must agree for all 8 base relations and all 32 proxy
//! relations, and the linear comparison counts must equal the proven
//! bounds.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use synchrel_core::{
    implies, naive_proxy, naive_relation, proxy_baseline, sound_bound, Evaluator, NonatomicEvent,
    ProxyDefinition, ProxyRelation, Relation, ScanSet,
};
use synchrel_sim::workload::{random, random_nonatomic, RandomConfig};

/// Draw a random execution and a disjoint event pair from a seed.
fn draw(
    seed: u64,
    processes: usize,
    nx: usize,
    ny: usize,
) -> Option<(synchrel_core::Execution, NonatomicEvent, NonatomicEvent)> {
    let w = random(&RandomConfig {
        processes,
        events_per_process: 10,
        message_prob: 0.35,
        seed,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE);
    let x = random_nonatomic(&w.exec, &mut rng, nx.min(processes), 3);
    for _ in 0..60 {
        let y = random_nonatomic(&w.exec, &mut rng, ny.min(processes), 3);
        if !x.overlaps(&y) {
            return Some((w.exec, x, y));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn base_relations_agree(
        seed in any::<u64>(),
        processes in 2..8usize,
        nx in 1..6usize,
        ny in 1..6usize,
    ) {
        let Some((exec, x, y)) = draw(seed, processes, nx, ny) else {
            return Ok(());
        };
        let ev = Evaluator::new(&exec);
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        for rel in Relation::ALL {
            let ground = naive_relation(&exec, rel, &x, &y);
            let (base, _) = proxy_baseline(&exec, rel, &x, &y);
            let lin = ev.eval_counted(rel, &sx, &sy);
            let full = ev.eval_scanned(rel, &sx, &sy, ScanSet::FullP).unwrap();
            prop_assert_eq!(base, ground, "baseline {} seed {}", rel, seed);
            prop_assert_eq!(lin.holds, ground, "linear {} seed {}", rel, seed);
            prop_assert_eq!(full.holds, ground, "fullP {} seed {}", rel, seed);
            prop_assert_eq!(
                lin.comparisons,
                sound_bound(rel, x.node_count(), y.node_count()),
                "count {} seed {}", rel, seed
            );
        }
    }

    #[test]
    fn proxy_relations_agree(
        seed in any::<u64>(),
        processes in 2..7usize,
        nx in 1..5usize,
        ny in 1..5usize,
    ) {
        let Some((exec, x, y)) = draw(seed, processes, nx, ny) else {
            return Ok(());
        };
        let ev = Evaluator::new(&exec);
        let px = ev.summarize_proxies(&x);
        let py = ev.summarize_proxies(&y);
        let (set, _) = ev.eval_all_proxy(&px, &py);
        for pr in ProxyRelation::all() {
            let ground =
                naive_proxy(&exec, pr, &x, &y, ProxyDefinition::PerNode).unwrap();
            prop_assert_eq!(set.contains(pr), ground, "{} seed {}", pr, seed);
        }
    }

    #[test]
    fn hierarchy_respected_by_linear_evaluator(
        seed in any::<u64>(),
        processes in 2..7usize,
        nx in 1..5usize,
        ny in 1..5usize,
    ) {
        let Some((exec, x, y)) = draw(seed, processes, nx, ny) else {
            return Ok(());
        };
        let ev = Evaluator::new(&exec);
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        let verdicts: Vec<(Relation, bool)> = Relation::ALL
            .into_iter()
            .map(|r| (r, ev.eval(r, &sx, &sy)))
            .collect();
        for &(ra, va) in &verdicts {
            if !va {
                continue;
            }
            for &(rb, vb) in &verdicts {
                if implies(ra, rb) {
                    prop_assert!(
                        vb,
                        "{} holds but implied {} does not (seed {})",
                        ra, rb, seed
                    );
                }
            }
        }
    }

    #[test]
    fn twins_identical(
        seed in any::<u64>(),
        processes in 2..7usize,
        nx in 1..5usize,
        ny in 1..5usize,
    ) {
        let Some((exec, x, y)) = draw(seed, processes, nx, ny) else {
            return Ok(());
        };
        let ev = Evaluator::new(&exec);
        let sx = ev.summarize(&x);
        let sy = ev.summarize(&y);
        prop_assert_eq!(
            ev.eval(Relation::R1, &sx, &sy),
            ev.eval(Relation::R1p, &sx, &sy)
        );
        prop_assert_eq!(
            ev.eval(Relation::R4, &sx, &sy),
            ev.eval(Relation::R4p, &sx, &sy)
        );
    }

    #[test]
    fn global_proxies_consistent_with_pernode(
        seed in any::<u64>(),
        processes in 2..6usize,
        nx in 1..4usize,
        ny in 1..4usize,
    ) {
        // Where Definition-3 proxies exist they are singletons drawn from
        // the Definition-2 proxies, so R over Defn-3 proxies must match
        // the naive evaluation over those singleton sets.
        let Some((exec, x, y)) = draw(seed, processes, nx, ny) else {
            return Ok(());
        };
        for pr in ProxyRelation::all() {
            if let Ok(v) = naive_proxy(&exec, pr, &x, &y, ProxyDefinition::Global) {
                {
                    // Recompute by materializing the Defn-3 proxies.
                    let xh = match pr.x_proxy {
                        synchrel_core::Proxy::L => x.proxy_lower(&exec, ProxyDefinition::Global),
                        synchrel_core::Proxy::U => x.proxy_upper(&exec, ProxyDefinition::Global),
                    }
                    .unwrap();
                    let yh = match pr.y_proxy {
                        synchrel_core::Proxy::L => y.proxy_lower(&exec, ProxyDefinition::Global),
                        synchrel_core::Proxy::U => y.proxy_upper(&exec, ProxyDefinition::Global),
                    }
                    .unwrap();
                    prop_assert_eq!(naive_relation(&exec, pr.rel, &xh, &yh), v);
                }
            } // proxy may not exist — nothing to check then
        }
    }
}
