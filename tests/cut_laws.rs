//! Property suite for the cut machinery: Definition-7 form equivalence,
//! lattice laws, Lemma 11/12, and timestamp-vs-extensional agreement of
//! all condensation cuts, over randomized executions.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use synchrel_core::cut::ll_extensional;
use synchrel_core::pastfuture::condensation_extensional;
use synchrel_core::{
    causal_past, ccf, condensation, ll, CondensationKind, Cut, Execution, LlForm, NonatomicEvent,
    ProcessId,
};
use synchrel_sim::workload::{random, random_nonatomic, RandomConfig};

fn draw_exec(seed: u64, processes: usize) -> Execution {
    random(&RandomConfig {
        processes,
        events_per_process: 8,
        message_prob: 0.4,
        seed,
    })
    .exec
}

fn draw_cut(exec: &Execution, rng: &mut ChaCha8Rng) -> Cut {
    let counts: Vec<u32> = (0..exec.num_processes())
        .map(|p| rng.random_range(1..=exec.len(ProcessId(p as u32))))
        .collect();
    Cut::from_counts(exec, counts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ll_forms_equivalent_on_random_cuts(
        seed in any::<u64>(),
        processes in 2..7usize,
    ) {
        // Every process of the generated executions has app events, so
        // all four Definition-7 forms must agree (the app-empty-process
        // divergence is covered by a dedicated unit test in core).
        let exec = draw_exec(seed, processes);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA11CE);
        for _ in 0..16 {
            let c = draw_cut(&exec, &mut rng);
            let cp = draw_cut(&exec, &mut rng);
            let f1 = ll_extensional(&exec, &c, &cp, LlForm::Form1);
            let f2 = ll_extensional(&exec, &c, &cp, LlForm::Form2);
            let f3 = ll_extensional(&exec, &c, &cp, LlForm::Form3);
            let f4 = ll_extensional(&exec, &c, &cp, LlForm::Form4);
            let fast = ll(&c, &cp);
            prop_assert_eq!(f1, f2);
            prop_assert_eq!(f3, f4);
            prop_assert_eq!(f1, f3);
            prop_assert_eq!(f1, fast, "fast ll on ({}, {})", c, cp);
        }
    }

    #[test]
    fn cut_lattice_laws(
        seed in any::<u64>(),
        processes in 2..7usize,
    ) {
        let exec = draw_exec(seed, processes);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0B);
        for _ in 0..8 {
            let a = draw_cut(&exec, &mut rng);
            let b = draw_cut(&exec, &mut rng);
            let c = draw_cut(&exec, &mut rng);
            // commutativity / associativity / absorption / idempotence
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(
                a.intersection(&b).intersection(&c),
                a.intersection(&b.intersection(&c))
            );
            prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
            prop_assert_eq!(a.intersection(&a.union(&b)), a.clone());
            prop_assert_eq!(a.union(&a), a.clone());
            // Lemma 16 via the extensional sets.
            let mut us = a.to_event_set(&exec);
            us.union_with(&b.to_event_set(&exec));
            prop_assert_eq!(Cut::from_event_set(&exec, &us).unwrap(), a.union(&b));
            let mut is = a.to_event_set(&exec);
            is.intersect_with(&b.to_event_set(&exec));
            prop_assert_eq!(
                Cut::from_event_set(&exec, &is).unwrap(),
                a.intersection(&b)
            );
        }
    }

    #[test]
    fn ll_transitive_and_irreflexive(
        seed in any::<u64>(),
        processes in 2..6usize,
    ) {
        let exec = draw_exec(seed, processes);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7A57);
        let cuts: Vec<Cut> = (0..10).map(|_| draw_cut(&exec, &mut rng)).collect();
        for a in &cuts {
            prop_assert!(!ll(a, a));
            for b in &cuts {
                if !ll(a, b) { continue; }
                for c in &cuts {
                    if ll(b, c) {
                        prop_assert!(ll(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn event_cuts_match_extensional(
        seed in any::<u64>(),
        processes in 2..7usize,
    ) {
        use synchrel_core::pastfuture::{causal_past_extensional, ccf_extensional};
        let exec = draw_exec(seed, processes);
        for e in exec.app_events().collect::<Vec<_>>() {
            let past = causal_past(&exec, e);
            prop_assert_eq!(
                &Cut::from_event_set(&exec, &causal_past_extensional(&exec, e)).unwrap(),
                &past
            );
            let fut = ccf(&exec, e);
            prop_assert_eq!(
                &Cut::from_event_set(&exec, &ccf_extensional(&exec, e)).unwrap(),
                &fut
            );
            // ↓e ⊆ e⇑ never necessarily; but both contain ⊥ and e itself.
            prop_assert!(past.contains(e));
            prop_assert!(fut.contains(e));
        }
    }

    #[test]
    fn condensation_matches_extensional_and_lemma12(
        seed in any::<u64>(),
        processes in 2..6usize,
        nodes in 1..5usize,
    ) {
        let exec = draw_exec(seed, processes);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFACE);
        let x: NonatomicEvent =
            random_nonatomic(&exec, &mut rng, nodes.min(processes), 3);
        let members: Vec<_> = x.events().collect();
        for kind in CondensationKind::ALL {
            let fast = condensation(&exec, &x, kind);
            let ext = condensation_extensional(&exec, &x, kind);
            // Lemma 11: extensional sets are cuts; both constructions agree.
            prop_assert_eq!(&Cut::from_event_set(&exec, &ext).unwrap(), &fast);
            // Lemma 12 surface properties.
            for z in fast.surface() {
                match kind {
                    CondensationKind::IntersectPast => {
                        for &m in &members {
                            prop_assert!(exec.precedes_eq(z, m));
                        }
                    }
                    CondensationKind::UnionPast => {
                        prop_assert!(
                            z.index == 0
                                || members.iter().any(|&m| exec.precedes_eq(z, m))
                        );
                    }
                    CondensationKind::IntersectFuture => {
                        prop_assert!(members.iter().any(|&m| exec.precedes_eq(m, z)));
                    }
                    CondensationKind::UnionFuture => {
                        for &m in &members {
                            prop_assert!(exec.precedes_eq(m, z));
                        }
                    }
                }
            }
        }
    }
}
