//! Quickstart: build a small distributed execution, define two
//! nonatomic events, and evaluate the paper's relations between them.
//!
//! ```text
//! cargo run -p synchrel-bench --example quickstart
//! ```

use synchrel_core::prelude::*;

fn main() -> synchrel_core::Result<()> {
    // A 3-process execution: P0 prepares and sends; P1 processes and
    // forwards; P2 consumes.
    let mut b = ExecutionBuilder::new(3);
    let prep = b.internal(0);
    let (send1, m1) = b.send(0);
    let recv1 = b.recv(1, m1)?;
    let work = b.internal(1);
    let (send2, m2) = b.send(1);
    let recv2 = b.recv(2, m2)?;
    let consume = b.internal(2);
    let exec = b.build()?;

    // High-level actions: "produce" spans P0 and P1; "deliver" spans P1
    // and P2.
    let produce = NonatomicEvent::new(&exec, [prep, send1, recv1, work])?;
    let deliver = NonatomicEvent::new(&exec, [send2, recv2, consume])?;

    println!("execution:");
    let mut d = Diagram::new(&exec);
    d.label_event(&produce, "p");
    d.label_event(&deliver, "d");
    print!("{}", d.render());

    println!(
        "\nN_produce = {:?} (|N| = {}), N_deliver = {:?}",
        produce.node_set(),
        produce.node_count(),
        deliver.node_set()
    );

    // Evaluate all eight relations, with comparison counts.
    let ev = Evaluator::new(&exec);
    let sx = ev.summarize(&produce);
    let sy = ev.summarize(&deliver);
    println!("\nrelation  holds  comparisons  paper bound");
    for rel in Relation::ALL {
        let c = ev.eval_counted(rel, &sx, &sy);
        println!(
            "{:<9} {:<6} {:<12} {}",
            rel.name(),
            c.holds,
            c.comparisons,
            theorem20_bound(rel, produce.node_count(), deliver.node_count())
        );
    }

    // The full 32-relation profile via proxies.
    let px = ev.summarize_proxies(&produce);
    let py = ev.summarize_proxies(&deliver);
    let (set, cmp) = ev.eval_all_proxy(&px, &py);
    println!(
        "\n{} of the 32 proxy relations hold ({} comparisons total):",
        set.len(),
        cmp
    );
    println!("{set}");
    Ok(())
}
