//! Distributed predicate detection: could all local conditions have
//! held at the same instant?
//!
//! A monitoring system records, per process, the interval during which
//! a local alarm condition was raised. The operator needs to know
//! whether *all* alarms could have been active simultaneously (a global
//! emergency) or whether causality rules that out. This is conjunctive
//! global predicate detection, answered with the `∪⇓S` condensation cut
//! of the interval starts.
//!
//! ```text
//! cargo run -p synchrel-bench --example predicate_detection
//! ```

use synchrel_core::{Diagram, ExecutionBuilder};
use synchrel_monitor::predicate::{possibly_overlap, LocalInterval};

fn main() {
    // Three monitored subsystems. P0's alarm is early; P1's alarm starts
    // after hearing from P0; P2's alarm is late and independent.
    let mut b = ExecutionBuilder::new(3);
    let a_start = b.internal(0); // P0 alarm raised
    let (a_send, m) = b.send(0); // still raised while notifying P1
    let b_start = b.recv(1, m).unwrap(); // P1 alarm raised on notification
    let b_end = b.internal(1);
    let a_end = b.internal(0); // P0 alarm cleared
    let c_start = b.internal(2);
    let c_end = b.internal(2);
    let exec = b.build().unwrap();

    let mut d = Diagram::new(&exec);
    for (e, l) in [
        (a_start, "a["),
        (a_send, "a!"),
        (a_end, "a]"),
        (b_start, "b["),
        (b_end, "b]"),
        (c_start, "c["),
        (c_end, "c]"),
    ] {
        d.label(e, l);
    }
    println!("alarm intervals (x[ = raised, x] = cleared):\n");
    print!("{}", d.render());

    let alarms = [
        LocalInterval::new(a_start, a_end).unwrap(),
        LocalInterval::new(b_start, b_end).unwrap(),
        LocalInterval::new(c_start, c_end).unwrap(),
    ];
    let rep = possibly_overlap(&exec, &alarms);
    println!();
    if rep.possible {
        println!(
            "ALL THREE alarms could have been active simultaneously — \
             witness global state {} (a consistent cut whose surface \
             lies inside every interval).",
            rep.witness.as_ref().unwrap()
        );
    } else {
        let (j, i) = rep.blocking.unwrap();
        println!(
            "a simultaneous triple alarm is impossible: interval {j} \
             starts causally after interval {i} ends."
        );
    }
    assert!(rep.possible);

    // Tighten the scenario: P0 clears its alarm *before* notifying P1.
    let mut b = ExecutionBuilder::new(3);
    let a_start = b.internal(0);
    let a_end = b.internal(0); // cleared before the notification
    let (_, m) = b.send(0);
    let b_start = b.recv(1, m).unwrap();
    let b_end = b.internal(1);
    let c_start = b.internal(2);
    let c_end = b.internal(2);
    let exec = b.build().unwrap();
    let alarms = [
        LocalInterval::new(a_start, a_end).unwrap(),
        LocalInterval::new(b_start, b_end).unwrap(),
        LocalInterval::new(c_start, c_end).unwrap(),
    ];
    let rep = possibly_overlap(&exec, &alarms);
    println!();
    match rep.blocking {
        Some((j, i)) => println!(
            "after the fix (P0 clears before notifying): simultaneous \
             alarms impossible — interval {j} starts causally after \
             interval {i} ends."
        ),
        None => println!("unexpectedly still possible"),
    }
    assert!(!rep.possible);
}
