//! Online monitoring: verdicts about synchronization conditions *while
//! the system runs*, with monotonicity-aware early answers.
//!
//! Models a two-phase commit-style flow: a coordinator collects votes,
//! then broadcasts the decision. The monitor watches "all votes precede
//! the decision" (R1) and "the decision reaches every participant"
//! (R3') as events stream in.
//!
//! ```text
//! cargo run -p synchrel-bench --example online_monitor
//! ```

use synchrel_core::Relation;
use synchrel_monitor::{OnlineMonitor, Verdict};

fn show(m: &OnlineMonitor, what: &str) {
    println!(
        "  [{what}] votes≺decision: {:?}   decision-reaches-all: {:?}",
        m.check(Relation::R1, "votes", "decision"),
        m.check(Relation::R3p, "decision", "applied"),
    );
}

fn main() {
    const PARTICIPANTS: usize = 3; // processes 1..=3; coordinator is 0
    let mut m = OnlineMonitor::new(PARTICIPANTS + 1);

    println!("phase 1: participants vote");
    let mut vote_msgs = Vec::new();
    for p in 1..=PARTICIPANTS {
        let msg = m.send(p, &["votes"]).expect("valid");
        vote_msgs.push(msg);
        show(&m, &format!("vote from P{p}"));
    }
    m.close("votes");
    println!("  (votes closed)");

    println!("\nphase 2: coordinator collects and decides");
    for msg in vote_msgs {
        m.recv(0, msg, &[]).expect("valid");
    }
    m.internal(0, &["decision"]).expect("valid");
    m.close("decision");
    show(&m, "decision made");

    println!("\nphase 3: decision fan-out");
    for p in 1..=PARTICIPANTS {
        let msg = m.send(0, &[]).expect("valid");
        m.recv(p, msg, &["applied"]).expect("valid");
        show(&m, &format!("applied at P{p}"));
    }
    m.close("applied");
    show(&m, "applied closed");

    // Final assertions, as a monitor deployment would enforce.
    assert_eq!(m.check(Relation::R1, "votes", "decision"), Verdict::Holds);
    assert_eq!(
        m.check(Relation::R3p, "decision", "applied"),
        Verdict::Holds
    );
    assert_eq!(
        m.check(Relation::R4, "applied", "votes"),
        Verdict::Violated,
        "nothing flows backwards"
    );
    println!("\nall online conditions settled as expected");
}
