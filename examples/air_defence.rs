//! The paper's motivating application (its ref. [11]): synchronization
//! conditions in a real-time air-defence control system.
//!
//! A radar feeds a command post that tasks two missile batteries. The
//! doctrine is expressed as a serializable spec — detections feed
//! assessment, assessment wholly precedes engagement, engagements are
//! mutually exclusive — and checked against the simulated trace.
//!
//! ```text
//! cargo run -p synchrel-bench --example air_defence
//! ```

use synchrel_core::Relation;
use synchrel_monitor::{mutex, Checker, Condition, Spec};
use synchrel_sim::scenario;
use synchrel_sim::TraceStats;

fn main() {
    let s = scenario::air_defence().expect("scenario simulates");
    println!("{}: {}\n", s.name, s.description);
    println!(
        "trace: {}\n",
        TraceStats::compute_with_concurrency(&s.result.exec)
    );
    for (name, ev) in &s.actions {
        println!(
            "  action {:<10} |N| = {}  events = {}",
            name,
            ev.node_count(),
            ev.len()
        );
    }

    let spec = Spec::new("engagement-doctrine")
        .require(
            "detections-feed-assessment",
            Condition::rel(Relation::R2, "detect", "assess"),
        )
        .require(
            "assessment-before-engagement",
            Condition::rel(Relation::R1, "assess", "engage_a"),
        )
        .require(
            "reassess-between-engagements",
            Condition::ordered(["engage_a", "reassess", "engage_b"]),
        )
        .require(
            "exclusive-engagements",
            Condition::mutex(["engage_a", "engage_b"]),
        );

    println!(
        "\nspec as JSON:\n{}\n",
        serde_json::to_string_pretty(&spec).unwrap()
    );

    let checker = Checker::new(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let report = checker.check(&spec);
    println!("{report}");

    // The dedicated mutual-exclusion checker with comparison accounting.
    let sections: Vec<_> = s
        .actions
        .iter()
        .filter(|(n, _)| n.starts_with("engage"))
        .cloned()
        .collect();
    let rep = mutex::check_mutual_exclusion(&s.result.exec, &sections);
    println!("{rep}");

    std::process::exit(if report.all_hold() && rep.holds() {
        0
    } else {
        1
    });
}
