//! Offline trace analysis — the paper's Problem 4 workflow end to end:
//! record a trace with named high-level actions, persist it to JSON,
//! reload it, and compute the full relation matrix over all pairs.
//!
//! ```text
//! cargo run -p synchrel-bench --example trace_analysis
//! ```

use synchrel_core::{hierarchy, Detector, Proxy, ProxyRelation, Relation};
use synchrel_sim::format::TraceFile;
use synchrel_sim::workload;
use synchrel_sim::TraceStats;

fn main() {
    // 1. "Record" an execution: a client/server system with transactions.
    let w = workload::client_server(3, 3);
    println!(
        "recorded {} trace: {}",
        w.name,
        TraceStats::compute(&w.exec)
    );

    // 2. Persist it, then reload — the analysis below works purely from
    // the file, as the paper's offline setting assumes.
    let file = TraceFile::capture(
        &w.exec,
        w.labels.iter().cloned().zip(w.events.iter().cloned()),
    );
    let json = file.to_json().expect("serializes");
    println!("trace file: {} bytes of JSON", json.len());
    let (exec, intervals) = TraceFile::from_json(&json)
        .expect("parses")
        .restore()
        .expect("consistent");

    // 3. Problem 4(ii): all relations between all pairs.
    let names: Vec<String> = intervals.iter().map(|(n, _)| n.clone()).collect();
    let events: Vec<_> = intervals.into_iter().map(|(_, e)| e).collect();
    let detector = Detector::new(&exec, events);
    let reports = detector.all_pairs_parallel(4);

    // 4. Print a compact matrix: the strongest base relation (on U/L
    // proxies) per ordered pair.
    println!("\nstrongest relation per ordered pair (rows = X, cols = Y):");
    print!("{:>14}", "");
    for n in &names {
        print!("{n:>14}");
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        print!("{n:>14}");
        for j in 0..names.len() {
            if i == j {
                print!("{:>14}", "—");
                continue;
            }
            let rep = reports
                .iter()
                .find(|r| r.x == i && r.y == j)
                .expect("full matrix");
            let held: Vec<Relation> = Relation::ALL
                .into_iter()
                .filter(|&rel| {
                    // the canonical proxy pair preserving the base relation
                    let (xp, yp) = match rel {
                        Relation::R1 | Relation::R1p => (Proxy::U, Proxy::L),
                        Relation::R2 | Relation::R2p => (Proxy::U, Proxy::U),
                        Relation::R3 | Relation::R3p => (Proxy::L, Proxy::L),
                        Relation::R4 | Relation::R4p => (Proxy::L, Proxy::U),
                    };
                    rep.relations.contains(ProxyRelation::new(rel, xp, yp))
                })
                .collect();
            let strongest = hierarchy::strongest(&held);
            let cell = if strongest.is_empty() {
                "·".to_string()
            } else {
                strongest
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            print!("{cell:>14}");
        }
        println!();
    }

    let total_cmp: u64 = reports.iter().map(|r| r.comparisons).sum();
    println!(
        "\n{} pairs × 32 relations evaluated with {} integer comparisons",
        reports.len(),
        total_cmp
    );
}
