//! Distributed multimedia synchronization: lip-sync as causality
//! relations between nonatomic events.
//!
//! Video and audio servers stream chunks to a rendering client; the
//! application needs fine-grained discrimination — "all media of chunk
//! k delivered before its presentation finishes" (R2), "presentations
//! are serialized" (R1 chains) — exactly the paper's vocabulary.
//!
//! ```text
//! cargo run -p synchrel-bench --example multimedia_sync
//! ```

use synchrel_core::{Evaluator, Relation};
use synchrel_monitor::{Checker, Condition, Spec};
use synchrel_sim::scenario;

fn main() {
    const CHUNKS: usize = 5;
    let s = scenario::multimedia(CHUNKS).expect("scenario simulates");
    println!("{}: {}\n", s.name, s.description);

    // Per-chunk sync conditions plus presentation serialization.
    let mut spec = Spec::new("lip-sync");
    for k in 0..CHUNKS {
        spec = spec
            .require(
                format!("video{k}-delivered"),
                Condition::rel(Relation::R2, format!("video{k}"), format!("present{k}")),
            )
            .require(
                format!("audio{k}-delivered"),
                Condition::rel(Relation::R2, format!("audio{k}"), format!("present{k}")),
            );
    }
    spec = spec.require(
        "presentations-serialized",
        Condition::ordered((0..CHUNKS).map(|k| format!("present{k}"))),
    );

    let checker = Checker::new(
        &s.result.exec,
        s.actions.iter().map(|(n, e)| (n.clone(), e.clone())),
    );
    let report = checker.check(&spec);
    println!("{report}");

    // How far ahead may the servers run? Find the largest lag L such
    // that video of chunk k+L never starts before presentation of
    // chunk k (i.e. R4(present_k, video_{k+L}) — some presentation event
    // precedes some encoding event).
    let ev = Evaluator::new(&s.result.exec);
    for lag in 1..CHUNKS {
        let mut all = true;
        for k in 0..CHUNKS - lag {
            let p = s.action(&format!("present{k}")).unwrap();
            let v = s.action(&format!("video{}", k + lag)).unwrap();
            all &= ev.holds(Relation::R4, p, v);
        }
        println!(
            "server lag {lag}: presentation k influences video k+{lag}: {}",
            if all { "yes" } else { "no (servers run ahead)" }
        );
    }

    std::process::exit(if report.all_hold() { 0 } else { 1 });
}
